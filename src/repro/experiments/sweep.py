"""Heterogeneity sweep — an extension experiment beyond the paper's figures.

The paper's title question is *how much* heterogeneity hurts on-line
scheduling; its evaluation answers it at two points (homogeneous vs. the
testbed's heterogeneity).  This sweep fills the curve in between: it scales
the spread of the platform parameters by a controllable factor and measures
how the gap between the on-line heuristics widens as the platform becomes
more heterogeneous, for either dimension separately or both together.

Like the paper's figures, the sweep declares its (factor × platform ×
heuristic) grid as campaign cells and delegates execution to
:func:`repro.campaigns.runner.run_campaign`, so large sweeps parallelise
over processes and re-runs resolve from the result cache.

The sweep is an extension (not a published figure); it is exercised by
``benchmarks/bench_ablation_heterogeneity_sweep.py`` and documented in
EXPERIMENTS.md alongside the other ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.normalize import normalise_to_reference
from ..campaigns.cache import CampaignCache
from ..campaigns.grid import CampaignCell, cell_rng, resolve_root_seed
from ..campaigns.runner import run_campaign
from ..core.engine import simulate
from ..core.metrics import evaluate
from ..core.platform import Platform
from ..exceptions import ExperimentError
from ..schedulers.base import PAPER_HEURISTICS, create_scheduler
from ..workloads.release import RngLike, all_at_zero

__all__ = [
    "SweepPoint",
    "HeterogeneitySweepResult",
    "sweep_grid",
    "run_sweep_cell",
    "run_heterogeneity_sweep",
]

#: Geometric-mean communication and computation times used as the sweep's
#: homogeneous baseline (the centre of the paper's parameter ranges).
_BASE_COMM = 0.1
_BASE_COMP = 1.0


def _spread(base: float, factor: float, n: int, rng: np.random.Generator) -> List[float]:
    """Values whose max/min ratio is ``factor``, log-uniform around ``base``."""
    if factor < 1.0:
        raise ExperimentError("heterogeneity factor must be >= 1")
    if factor == 1.0:
        return [base] * n
    exponents = rng.uniform(-0.5, 0.5, size=n)
    exponents = (exponents - exponents.min()) / (exponents.max() - exponents.min()) - 0.5
    return [float(base * factor ** e) for e in exponents]


@dataclass(frozen=True)
class SweepPoint:
    """Results at one heterogeneity level."""

    factor: float
    #: mean normalised metric per heuristic (reference = SRPT)
    normalised: Dict[str, Dict[str, float]]
    #: spread between the best and worst heuristic for each metric
    spread: Dict[str, float]


@dataclass(frozen=True)
class HeterogeneitySweepResult:
    """The full sweep."""

    dimension: str
    factors: Tuple[float, ...]
    points: Tuple[SweepPoint, ...]

    def spread_curve(self, metric: str = "makespan") -> List[Tuple[float, float]]:
        """(heterogeneity factor, best-to-worst spread) pairs for one metric."""
        return [(point.factor, point.spread[metric]) for point in self.points]

    def is_monotone_nondecreasing(self, metric: str = "makespan", slack: float = 0.02) -> bool:
        """True when the heuristic spread never shrinks (up to ``slack``) as
        heterogeneity grows — the qualitative statement behind the paper's
        title."""
        curve = [spread for _, spread in self.spread_curve(metric)]
        return all(later >= earlier - slack for earlier, later in zip(curve, curve[1:]))


# ---------------------------------------------------------------------------
# Campaign grid declaration + cell runner
# ---------------------------------------------------------------------------
def sweep_grid(
    dimension: str,
    factors: Sequence[float],
    n_workers: int,
    n_tasks: int,
    n_platforms: int,
    heuristics: Sequence[str],
    root_seed: int,
) -> List[CampaignCell]:
    """The (factor × platform × heuristic) grid, factor-major."""
    cells: List[CampaignCell] = []
    for factor_index, factor in enumerate(factors):
        for platform_index in range(n_platforms):
            for scheduler in heuristics:
                cells.append(
                    CampaignCell.make(
                        "sweep",
                        len(cells),
                        dimension=dimension,
                        factor=float(factor),
                        factor_index=factor_index,
                        platform_index=platform_index,
                        scheduler=scheduler,
                        n_workers=n_workers,
                        n_tasks=n_tasks,
                        seed=root_seed,
                    )
                )
    return cells


def run_sweep_cell(cell: CampaignCell) -> Dict[str, float]:
    """Execute one (factor, platform, heuristic) simulation of the sweep."""
    seed = cell.param("seed")
    dimension = cell.param("dimension")
    factor = cell.param("factor")
    factor_index = cell.param("factor_index")
    platform_index = cell.param("platform_index")
    n_workers = cell.param("n_workers")
    rng = cell_rng(seed, "sweep/platform", dimension, factor_index, platform_index)
    comm_factor = factor if dimension in ("communication", "both") else 1.0
    comp_factor = factor if dimension in ("computation", "both") else 1.0
    comm = _spread(_BASE_COMM, comm_factor, n_workers, rng)
    comp = _spread(_BASE_COMP, comp_factor, n_workers, rng)
    platform = Platform.from_times(comm, comp)
    tasks = all_at_zero(cell.param("n_tasks"))
    scheduler = create_scheduler(cell.param("scheduler"))
    schedule = simulate(scheduler, platform, tasks, expose_task_count=True)
    metrics = evaluate(schedule)
    return {
        "makespan": metrics.makespan,
        "sum_flow": metrics.sum_flow,
        "max_flow": metrics.max_flow,
    }


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------
def run_heterogeneity_sweep(
    dimension: str = "both",
    factors: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
    n_workers: int = 5,
    n_tasks: int = 300,
    n_platforms: int = 3,
    heuristics: Sequence[str] = tuple(PAPER_HEURISTICS),
    reference: str = "SRPT",
    rng: RngLike = None,
    workers: int = 1,
    cache: Optional[CampaignCache] = None,
    engine_backend: str = "reference",
) -> HeterogeneitySweepResult:
    """Measure the heuristic spread as the platform heterogeneity grows.

    Parameters
    ----------
    dimension:
        ``"communication"``, ``"computation"`` or ``"both"`` — which platform
        parameter is spread out.
    factors:
        Max/min heterogeneity ratios to sweep (1.0 = fully homogeneous).
    workers / cache:
        Campaign execution knobs, see :func:`repro.campaigns.runner.run_campaign`.
    """
    if dimension not in ("communication", "computation", "both"):
        raise ExperimentError(f"unknown sweep dimension {dimension!r}")
    if reference not in heuristics:
        raise ExperimentError("the reference heuristic must be part of the sweep")
    root_seed = resolve_root_seed(rng)
    cells = sweep_grid(
        dimension, factors, n_workers, n_tasks, n_platforms, heuristics, root_seed
    )
    campaign = run_campaign(
        cells,
        workers=workers,
        cache=cache,
        group_key=lambda cell: cell.param("scheduler"),
        engine_backend=engine_backend,
    )

    n_heuristics = len(heuristics)
    points: List[SweepPoint] = []
    for factor_index, factor in enumerate(factors):
        per_platform: List[Dict[str, Dict[str, float]]] = []
        for platform_index in range(n_platforms):
            base = (factor_index * n_platforms + platform_index) * n_heuristics
            metrics = {
                name: campaign.metrics[base + offset]
                for offset, name in enumerate(heuristics)
            }
            per_platform.append(normalise_to_reference(metrics, reference))
        mean_normalised: Dict[str, Dict[str, float]] = {}
        for name in heuristics:
            mean_normalised[name] = {
                metric: float(np.mean([run[name][metric] for run in per_platform]))
                for metric in per_platform[0][name]
            }
        spread = {
            metric: max(mean_normalised[name][metric] for name in heuristics)
            - min(mean_normalised[name][metric] for name in heuristics)
            for metric in next(iter(mean_normalised.values()))
        }
        points.append(SweepPoint(factor=float(factor), normalised=mean_normalised, spread=spread))

    return HeterogeneitySweepResult(
        dimension=dimension, factors=tuple(float(f) for f in factors), points=tuple(points)
    )
