"""Table 1 — certified lower bounds on the competitive ratio.

The experiment evaluates the nine adversary games with the engine-backed
constrained enumeration (see :mod:`repro.theory`) and reports, for every
(platform class, objective) cell of Table 1:

* the stated closed-form bound,
* the game value certified by the evaluated instance (equal to the bound for
  the exact theorems, slightly below it for the asymptotic ones),
* optionally, the smallest ratio any implemented heuristic achieved against
  the corresponding reactive adversary (a sanity check: it can never be
  smaller than the certified value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..campaigns.cache import CampaignCache
from ..campaigns.grid import CampaignCell
from ..campaigns.runner import run_campaign
from ..core.metrics import Objective
from ..core.platform import PlatformKind
from ..theory.bounds import TABLE_1
from ..theory.verification import (
    DEFAULT_VERIFICATION_HEURISTICS,
    certificate_for,
    verify_heuristics_against_adversaries,
)

__all__ = ["Table1Row", "Table1Result", "table1_grid", "run_table1_cell", "run_table1"]

_KIND_BY_THEOREM: Dict[int, PlatformKind] = {
    1: PlatformKind.COMMUNICATION_HOMOGENEOUS,
    2: PlatformKind.COMMUNICATION_HOMOGENEOUS,
    3: PlatformKind.COMMUNICATION_HOMOGENEOUS,
    4: PlatformKind.COMPUTATION_HOMOGENEOUS,
    5: PlatformKind.COMPUTATION_HOMOGENEOUS,
    6: PlatformKind.COMPUTATION_HOMOGENEOUS,
    7: PlatformKind.HETEROGENEOUS,
    8: PlatformKind.HETEROGENEOUS,
    9: PlatformKind.HETEROGENEOUS,
}


@dataclass(frozen=True)
class Table1Row:
    """One cell of Table 1 with its reproduction status."""

    theorem: int
    platform_kind: PlatformKind
    objective: Objective
    stated_bound: float
    formula: str
    game_value: float
    #: smallest heuristic ratio against the reactive adversary, if measured
    best_heuristic_ratio: Optional[float] = None
    best_heuristic: Optional[str] = None

    @property
    def gap(self) -> float:
        """``stated_bound - game_value`` for this row."""
        return self.stated_bound - self.game_value

    @property
    def relative_gap(self) -> float:
        """The gap as a fraction of the stated bound."""
        return self.gap / self.stated_bound


@dataclass(frozen=True)
class Table1Result:
    """The reproduced Table 1."""

    rows: List[Table1Row]

    def row(self, theorem: int) -> Table1Row:
        """The row certifying the given theorem number."""
        for row in self.rows:
            if row.theorem == theorem:
                return row
        raise KeyError(f"no row for theorem {theorem}")

    def by_cell(self) -> Dict[tuple, Table1Row]:
        """Rows keyed by ``(platform kind, objective)``."""
        return {(row.platform_kind, row.objective): row for row in self.rows}


# ---------------------------------------------------------------------------
# Campaign grid declaration + cell runner
# ---------------------------------------------------------------------------
def table1_grid(
    include_heuristics: bool,
    heuristics: Sequence[str],
) -> List[CampaignCell]:
    """One cell per theorem; the games are deterministic, so no seed."""
    cells: List[CampaignCell] = []
    for theorem in sorted(_KIND_BY_THEOREM):
        cells.append(
            CampaignCell.make(
                "table1",
                len(cells),
                theorem=theorem,
                include_heuristics=include_heuristics,
                heuristics=tuple(heuristics) if include_heuristics else (),
            )
        )
    return cells


def run_table1_cell(cell: CampaignCell) -> Dict[str, object]:
    """Evaluate one theorem's adversary game (and optionally its heuristics)."""
    theorem = cell.param("theorem")
    certificate = certificate_for(theorem)
    metrics: Dict[str, object] = {
        "objective": certificate.objective.value,
        "game_value": certificate.value,
        "best_heuristic_ratio": None,
        "best_heuristic": None,
    }
    if cell.param("include_heuristics"):
        outcomes = verify_heuristics_against_adversaries(
            heuristics=tuple(cell.param("heuristics")), theorems=[theorem]
        )
        best = min(outcomes, key=lambda outcome: outcome.ratio)
        metrics["best_heuristic_ratio"] = best.ratio
        metrics["best_heuristic"] = best.scheduler_name
    return metrics


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------
def run_table1(
    include_heuristics: bool = False,
    heuristics: Sequence[str] = DEFAULT_VERIFICATION_HEURISTICS,
    workers: int = 1,
    cache: Optional[CampaignCache] = None,
    engine_backend: str = "reference",
) -> Table1Result:
    """Regenerate Table 1.

    ``include_heuristics=True`` additionally plays every reactive adversary
    against the implemented heuristics and reports the smallest ratio seen —
    slower but a useful end-to-end check.  The nine theorem games are
    independent campaign cells, so they parallelise and cache like any other
    campaign.
    """
    cells = table1_grid(include_heuristics, heuristics)
    campaign = run_campaign(
        cells, workers=workers, cache=cache, engine_backend=engine_backend
    )

    rows: List[Table1Row] = []
    for cell, metrics in zip(campaign.cells, campaign.metrics):
        theorem = cell.param("theorem")
        kind = _KIND_BY_THEOREM[theorem]
        objective = Objective(metrics["objective"])
        entry = TABLE_1[(kind, objective)]
        rows.append(
            Table1Row(
                theorem=theorem,
                platform_kind=kind,
                objective=objective,
                stated_bound=entry.value,
                formula=entry.formula,
                game_value=metrics["game_value"],
                best_heuristic_ratio=metrics["best_heuristic_ratio"],
                best_heuristic=metrics["best_heuristic"],
            )
        )
    return Table1Result(rows=rows)
