"""Table 1 — certified lower bounds on the competitive ratio.

The experiment evaluates the nine adversary games with the engine-backed
constrained enumeration (see :mod:`repro.theory`) and reports, for every
(platform class, objective) cell of Table 1:

* the stated closed-form bound,
* the game value certified by the evaluated instance (equal to the bound for
  the exact theorems, slightly below it for the asymptotic ones),
* optionally, the smallest ratio any implemented heuristic achieved against
  the corresponding reactive adversary (a sanity check: it can never be
  smaller than the certified value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.metrics import Objective
from ..core.platform import PlatformKind
from ..theory.bounds import TABLE_1
from ..theory.verification import (
    DEFAULT_VERIFICATION_HEURISTICS,
    all_certificates,
    verify_heuristics_against_adversaries,
)

__all__ = ["Table1Row", "Table1Result", "run_table1"]

_KIND_BY_THEOREM: Dict[int, PlatformKind] = {
    1: PlatformKind.COMMUNICATION_HOMOGENEOUS,
    2: PlatformKind.COMMUNICATION_HOMOGENEOUS,
    3: PlatformKind.COMMUNICATION_HOMOGENEOUS,
    4: PlatformKind.COMPUTATION_HOMOGENEOUS,
    5: PlatformKind.COMPUTATION_HOMOGENEOUS,
    6: PlatformKind.COMPUTATION_HOMOGENEOUS,
    7: PlatformKind.HETEROGENEOUS,
    8: PlatformKind.HETEROGENEOUS,
    9: PlatformKind.HETEROGENEOUS,
}


@dataclass(frozen=True)
class Table1Row:
    """One cell of Table 1 with its reproduction status."""

    theorem: int
    platform_kind: PlatformKind
    objective: Objective
    stated_bound: float
    formula: str
    game_value: float
    #: smallest heuristic ratio against the reactive adversary, if measured
    best_heuristic_ratio: Optional[float] = None
    best_heuristic: Optional[str] = None

    @property
    def gap(self) -> float:
        return self.stated_bound - self.game_value

    @property
    def relative_gap(self) -> float:
        return self.gap / self.stated_bound


@dataclass(frozen=True)
class Table1Result:
    """The reproduced Table 1."""

    rows: List[Table1Row]

    def row(self, theorem: int) -> Table1Row:
        for row in self.rows:
            if row.theorem == theorem:
                return row
        raise KeyError(f"no row for theorem {theorem}")

    def by_cell(self) -> Dict[tuple, Table1Row]:
        return {(row.platform_kind, row.objective): row for row in self.rows}


def run_table1(
    include_heuristics: bool = False,
    heuristics: Sequence[str] = DEFAULT_VERIFICATION_HEURISTICS,
) -> Table1Result:
    """Regenerate Table 1.

    ``include_heuristics=True`` additionally plays every reactive adversary
    against the implemented heuristics and reports the smallest ratio seen —
    slower but a useful end-to-end check.
    """
    certificates = {result.theorem: result for result in all_certificates()}
    best_ratio: Dict[int, tuple] = {}
    if include_heuristics:
        outcomes = verify_heuristics_against_adversaries(heuristics=heuristics)
        for outcome in outcomes:
            current = best_ratio.get(outcome.theorem)
            if current is None or outcome.ratio < current[0]:
                best_ratio[outcome.theorem] = (outcome.ratio, outcome.scheduler_name)

    rows: List[Table1Row] = []
    for theorem in sorted(certificates):
        certificate = certificates[theorem]
        kind = _KIND_BY_THEOREM[theorem]
        entry = TABLE_1[(kind, certificate.objective)]
        ratio, name = best_ratio.get(theorem, (None, None))
        rows.append(
            Table1Row(
                theorem=theorem,
                platform_kind=kind,
                objective=certificate.objective,
                stated_bound=entry.value,
                formula=entry.formula,
                game_value=certificate.value,
                best_heuristic_ratio=ratio,
                best_heuristic=name,
            )
        )
    return Table1Result(rows=rows)
