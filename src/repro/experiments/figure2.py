"""Figure 2 — robustness of the heuristics to task-size perturbations.

Section 4.3: the size of the matrix sent at each round is randomly changed
by a factor of up to 10 %, and the figure plots, for every heuristic, the
average makespan / sum-flow / max-flow obtained with perturbed tasks divided
by the value obtained on the same platform with identical tasks.  The paper
concludes that the heuristics "are quite robust for makespan minimisation
problems, but not as much for sum-flow or max-flow problems".

:func:`run_figure2` reproduces the experiment: for each random fully
heterogeneous platform it runs every heuristic once on the identical-task
workload and ``n_perturbations`` times on independently perturbed workloads,
then averages the per-heuristic ratios over platforms and perturbations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis.normalize import ratio_to_baseline
from ..exceptions import ExperimentError
from ..mpi_sim.runner import run_heuristics_on_platform
from ..workloads.perturbation import perturb_task_sizes
from ..workloads.platforms import PlatformSpec, random_platform
from ..workloads.release import all_at_zero, as_rng
from .config import Figure2Config

__all__ = ["Figure2Result", "run_figure2"]


@dataclass(frozen=True)
class Figure2Result:
    """Result of the robustness experiment."""

    config: Figure2Config
    #: One entry per (platform, perturbation): ``{heuristic: {metric: ratio}}``.
    per_run_ratios: List[Dict[str, Dict[str, float]]]
    #: Mean ratio per heuristic and metric — the bar heights of Figure 2.
    mean_ratios: Dict[str, Dict[str, float]]

    def bar(self, heuristic: str, metric: str) -> float:
        try:
            return self.mean_ratios[heuristic][metric]
        except KeyError as exc:
            raise ExperimentError(
                f"unknown heuristic/metric pair ({heuristic!r}, {metric!r})"
            ) from exc

    def degradation(self, metric: str) -> Dict[str, float]:
        """Relative degradation (ratio − 1) per heuristic for one metric."""
        return {name: values[metric] - 1.0 for name, values in self.mean_ratios.items()}


def run_figure2(config: Optional[Figure2Config] = None) -> Figure2Result:
    """Run the Figure 2 robustness campaign."""
    cfg = config if config is not None else Figure2Config()
    rng = as_rng(cfg.seed)
    baseline_tasks = all_at_zero(cfg.n_tasks)
    per_run_ratios: List[Dict[str, Dict[str, float]]] = []

    for _ in range(cfg.n_platforms):
        spec = PlatformSpec(
            kind=cfg.kind,
            n_workers=cfg.n_workers,
            comm_range=cfg.comm_range,
            comp_range=cfg.comp_range,
        )
        platform = random_platform(spec, rng)
        baseline = run_heuristics_on_platform(platform, baseline_tasks, cfg.heuristics)
        for _ in range(cfg.n_perturbations):
            perturbed_tasks = perturb_task_sizes(
                baseline_tasks, amplitude=cfg.perturbation_amplitude, rng=rng
            )
            perturbed = run_heuristics_on_platform(
                platform, perturbed_tasks, cfg.heuristics
            )
            per_run_ratios.append(ratio_to_baseline(perturbed, baseline))

    heuristics = list(per_run_ratios[0])
    mean_ratios: Dict[str, Dict[str, float]] = {}
    for heuristic in heuristics:
        mean_ratios[heuristic] = {
            metric: float(
                np.mean([run[heuristic][metric] for run in per_run_ratios])
            )
            for metric in per_run_ratios[0][heuristic]
        }
    return Figure2Result(config=cfg, per_run_ratios=per_run_ratios, mean_ratios=mean_ratios)
