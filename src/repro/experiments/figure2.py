"""Figure 2 — robustness of the heuristics to task-size perturbations.

Section 4.3: the size of the matrix sent at each round is randomly changed
by a factor of up to 10 %, and the figure plots, for every heuristic, the
average makespan / sum-flow / max-flow obtained with perturbed tasks divided
by the value obtained on the same platform with identical tasks.  The paper
concludes that the heuristics "are quite robust for makespan minimisation
problems, but not as much for sum-flow or max-flow problems".

:func:`run_figure2` declares the experiment as a campaign grid — one
:class:`~repro.campaigns.grid.CampaignCell` per (platform, workload,
heuristic) triple, where the workload is either the identical-task baseline
(``perturbation_index == -1``) or one of ``n_perturbations`` independently
perturbed bags — and delegates execution to
:func:`repro.campaigns.runner.run_campaign`.  Platforms and perturbations
are derived from the campaign's root seed and the cell coordinates, so the
grid parallelises and caches cell by cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis.normalize import ratio_to_baseline
from ..campaigns.cache import CampaignCache
from ..campaigns.grid import CampaignCell, cell_rng, resolve_root_seed
from ..campaigns.runner import run_campaign
from ..core.engine import simulate
from ..core.metrics import evaluate
from ..core.platform import PlatformKind
from ..exceptions import ExperimentError
from ..schedulers.base import create_scheduler
from ..workloads.perturbation import perturb_task_sizes
from ..workloads.platforms import PlatformSpec, random_platform
from ..workloads.release import all_at_zero
from .config import Figure2Config

__all__ = ["Figure2Result", "figure2_grid", "run_figure2_cell", "run_figure2"]


@dataclass(frozen=True)
class Figure2Result:
    """Result of the robustness experiment."""

    config: Figure2Config
    #: One entry per (platform, perturbation): ``{heuristic: {metric: ratio}}``.
    per_run_ratios: List[Dict[str, Dict[str, float]]]
    #: Mean ratio per heuristic and metric — the bar heights of Figure 2.
    mean_ratios: Dict[str, Dict[str, float]]

    def bar(self, heuristic: str, metric: str) -> float:
        """One bar height of the Figure 2 diagram."""
        try:
            return self.mean_ratios[heuristic][metric]
        except KeyError as exc:
            raise ExperimentError(
                f"unknown heuristic/metric pair ({heuristic!r}, {metric!r})"
            ) from exc

    def degradation(self, metric: str) -> Dict[str, float]:
        """Relative degradation (ratio − 1) per heuristic for one metric."""
        return {name: values[metric] - 1.0 for name, values in self.mean_ratios.items()}


# ---------------------------------------------------------------------------
# Campaign grid declaration + cell runner
# ---------------------------------------------------------------------------
def figure2_grid(config: Figure2Config, root_seed: int) -> List[CampaignCell]:
    """The (platform × workload × heuristic) grid of the robustness study.

    Workload ``-1`` is the identical-task baseline; workloads ``0 ..
    n_perturbations - 1`` are independent perturbations of it.  Grid order is
    platform-major, then workload (baseline first), then heuristic.
    """
    cells: List[CampaignCell] = []
    for platform_index in range(config.n_platforms):
        for perturbation_index in range(-1, config.n_perturbations):
            for scheduler in config.heuristics:
                params = dict(
                    kind=config.kind.value,
                    platform_index=platform_index,
                    perturbation_index=perturbation_index,
                    scheduler=scheduler,
                    n_workers=config.n_workers,
                    n_tasks=config.n_tasks,
                    comm_range=config.comm_range,
                    comp_range=config.comp_range,
                    seed=root_seed,
                )
                if perturbation_index >= 0:
                    # Baseline cells never read the amplitude; leaving it out
                    # of their identity lets different-amplitude campaigns
                    # share the expensive identical-task baselines.
                    params["perturbation_amplitude"] = config.perturbation_amplitude
                cells.append(CampaignCell.make("figure2", len(cells), **params))
    return cells


def run_figure2_cell(cell: CampaignCell) -> Dict[str, float]:
    """Execute one (platform, workload, heuristic) simulation of Figure 2.

    The platform depends only on ``(seed, kind, platform_index)`` and the
    perturbed workload only on ``(seed, platform_index,
    perturbation_index)``, so all heuristics of one run face identical
    conditions regardless of scheduling across processes.
    """
    kind = PlatformKind(cell.param("kind"))
    seed = cell.param("seed")
    platform_index = cell.param("platform_index")
    perturbation_index = cell.param("perturbation_index")
    rng = cell_rng(seed, "figure2/platform", kind.value, platform_index)
    spec = PlatformSpec(
        kind=kind,
        n_workers=cell.param("n_workers"),
        comm_range=tuple(cell.param("comm_range")),
        comp_range=tuple(cell.param("comp_range")),
    )
    platform = random_platform(spec, rng)
    tasks = all_at_zero(cell.param("n_tasks"))
    if perturbation_index >= 0:
        tasks = perturb_task_sizes(
            tasks,
            amplitude=cell.param("perturbation_amplitude"),
            rng=cell_rng(seed, "figure2/perturb", platform_index, perturbation_index),
        )
    scheduler = create_scheduler(cell.param("scheduler"))
    schedule = simulate(scheduler, platform, tasks, expose_task_count=True)
    metrics = evaluate(schedule)
    return {
        "makespan": metrics.makespan,
        "sum_flow": metrics.sum_flow,
        "max_flow": metrics.max_flow,
    }


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------
def run_figure2(
    config: Optional[Figure2Config] = None,
    workers: int = 1,
    cache: Optional[CampaignCache] = None,
    engine_backend: str = "reference",
) -> Figure2Result:
    """Run the Figure 2 robustness campaign."""
    cfg = config if config is not None else Figure2Config()
    root_seed = resolve_root_seed(cfg.seed)
    cells = figure2_grid(cfg, root_seed)
    campaign = run_campaign(
        cells,
        workers=workers,
        cache=cache,
        group_key=lambda cell: cell.param("scheduler"),
        engine_backend=engine_backend,
    )

    n_heuristics = len(cfg.heuristics)
    workloads_per_platform = cfg.n_perturbations + 1  # baseline + perturbations
    per_run_ratios: List[Dict[str, Dict[str, float]]] = []
    for platform_index in range(cfg.n_platforms):
        platform_base = platform_index * workloads_per_platform * n_heuristics
        baseline = {
            name: campaign.metrics[platform_base + offset]
            for offset, name in enumerate(cfg.heuristics)
        }
        for perturbation_index in range(cfg.n_perturbations):
            run_base = platform_base + (perturbation_index + 1) * n_heuristics
            perturbed = {
                name: campaign.metrics[run_base + offset]
                for offset, name in enumerate(cfg.heuristics)
            }
            per_run_ratios.append(ratio_to_baseline(perturbed, baseline))

    heuristics = list(per_run_ratios[0])
    mean_ratios: Dict[str, Dict[str, float]] = {}
    for heuristic in heuristics:
        mean_ratios[heuristic] = {
            metric: float(
                np.mean([run[heuristic][metric] for run in per_run_ratios])
            )
            for metric in per_run_ratios[0][heuristic]
        }
    return Figure2Result(config=cfg, per_run_ratios=per_run_ratios, mean_ratios=mean_ratios)
