"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures without swallowing unrelated
programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class PlatformError(ReproError):
    """Raised when a platform description is invalid (e.g. non-positive
    communication or computation times, empty worker list)."""


class TaskError(ReproError):
    """Raised when a task or task set is invalid (e.g. negative release
    time, non-positive size factors, duplicate identifiers)."""


class SchedulingError(ReproError):
    """Base class for errors occurring while running a schedule."""


class InvalidDecisionError(SchedulingError):
    """Raised when an on-line scheduler returns a decision the engine cannot
    honour (unknown task, unknown worker, assignment of an already-assigned
    task, wake-up in the past, ...)."""


class SchedulingStalledError(SchedulingError):
    """Raised when the scheduler refuses to assign any of the remaining tasks
    and no future event can change its view (the simulation would otherwise
    hang forever)."""


class InfeasibleScheduleError(SchedulingError):
    """Raised by the schedule validator when a schedule violates the one-port
    model, the release dates, or the per-worker execution constraints."""


class CalibrationError(ReproError):
    """Raised when the simulated-cluster calibration protocol cannot reach the
    requested heterogeneity level."""


class ExperimentError(ReproError):
    """Raised when an experiment configuration is inconsistent."""


class CampaignError(ReproError):
    """Raised when a campaign grid, cache or runner is misused (unknown cell
    experiment, corrupt cache entry, invalid worker count, ...)."""


class ServiceError(ReproError):
    """Base class for errors raised by the :mod:`repro.service` subsystem
    (invalid configuration of the service itself, misuse of the dispatcher
    API, ...)."""


class RequestValidationError(ServiceError):
    """Raised when a :class:`~repro.service.schema.ScheduleRequest` cannot be
    built from a raw payload (unknown schema version, missing or malformed
    field, unknown scheduler or release process, out-of-range parameter).
    The service maps this to a ``status: "error"`` response instead of
    crashing the request loop."""


class ServiceOverloadedError(ServiceError):
    """Raised (and mapped to a ``status: "rejected"`` response) when
    admission control sheds a request: the bounded queue is full, or the
    request's estimated simulation cost exceeds the configured budget."""


class ScenarioError(ReproError):
    """Raised when a scenario or platform timeline is invalid (unknown
    scenario name, event targeting a non-existent worker, non-positive speed
    multiplier, ...)."""
