"""Matrix-determinant task model.

In the paper's experiment "each task will be a matrix, and each slave will
have to calculate the determinant of the matrices that it will receive".
The matrix is only a vehicle for a tunable amount of data and computation,
so the simulated cluster replaces it with its cost model:

* a dense ``n × n`` matrix of 8-byte floats occupies ``8 n²`` bytes on the
  wire (plus a small message header);
* computing its determinant by LU decomposition costs roughly ``2/3 n³``
  floating-point operations.

The two numbers feed the network model (transfer time) and the machine model
(compute time).  The module also provides the inverse mapping — what matrix
size yields a prescribed communication or computation time — which is what
the calibration protocol of Section 4.2 needs when it "plays with matrix
sizes so as to achieve more heterogeneity".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import TaskError

__all__ = ["MatrixTaskModel"]

#: Bytes per matrix entry (IEEE 754 double precision).
_BYTES_PER_ENTRY = 8.0

#: Leading-order flop count of an LU-based determinant of an ``n × n`` matrix.
_DETERMINANT_FLOP_FACTOR = 2.0 / 3.0


@dataclass(frozen=True)
class MatrixTaskModel:
    """Cost model for one matrix-determinant task.

    Parameters
    ----------
    matrix_size:
        Matrix dimension ``n``.
    header_bytes:
        Fixed per-message overhead (MPI envelope, pickling, ...).
    """

    matrix_size: int
    header_bytes: float = 512.0

    def __post_init__(self) -> None:
        if self.matrix_size <= 0:
            raise TaskError(f"matrix_size must be positive, got {self.matrix_size}")
        if self.header_bytes < 0:
            raise TaskError(f"header_bytes must be non-negative, got {self.header_bytes}")

    @property
    def message_bytes(self) -> float:
        """Bytes sent from the master to a slave for one task."""
        return _BYTES_PER_ENTRY * self.matrix_size ** 2 + self.header_bytes

    @property
    def flops(self) -> float:
        """Floating-point operations needed to compute the determinant."""
        return _DETERMINANT_FLOP_FACTOR * self.matrix_size ** 3

    def comm_time(self, bandwidth: float, latency: float = 0.0) -> float:
        """Transfer time of one task over a link."""
        if bandwidth <= 0:
            raise TaskError(f"bandwidth must be positive, got {bandwidth}")
        return latency + self.message_bytes / bandwidth

    def comp_time(self, flops_per_second: float) -> float:
        """Computation time of one task on a machine."""
        if flops_per_second <= 0:
            raise TaskError(f"flops_per_second must be positive, got {flops_per_second}")
        return self.flops / flops_per_second

    # -- inverse mappings (used by calibration) ------------------------------
    @classmethod
    def size_for_comp_time(cls, target_time: float, flops_per_second: float) -> int:
        """Smallest matrix size whose determinant takes at least ``target_time``."""
        if target_time <= 0 or flops_per_second <= 0:
            raise TaskError("target_time and flops_per_second must be positive")
        n = (target_time * flops_per_second / _DETERMINANT_FLOP_FACTOR) ** (1.0 / 3.0)
        return max(1, int(math.ceil(n)))

    @classmethod
    def size_for_comm_time(
        cls, target_time: float, bandwidth: float, latency: float = 0.0,
        header_bytes: float = 512.0,
    ) -> int:
        """Smallest matrix size whose transfer takes at least ``target_time``."""
        if target_time <= 0 or bandwidth <= 0:
            raise TaskError("target_time and bandwidth must be positive")
        payload = max((target_time - latency) * bandwidth - header_bytes, _BYTES_PER_ENTRY)
        n = math.sqrt(payload / _BYTES_PER_ENTRY)
        return max(1, int(math.ceil(n)))
