"""Simulated heterogeneous cluster (the substitute for the paper's testbed).

The experiments of Section 4 ran on "a small heterogeneous master-slave
platform with five different computers, connected to each other by a fast
Ethernet switch (100 Mbit/s)", the machines differing "both in terms of CPU
speed and in the amount of available memory", the link heterogeneity coming
"mainly from the differences between the network cards".

We do not have that hardware, so this module models it: a
:class:`SlaveMachine` carries a CPU speed (flops/s), a network card and a
measurement-noise level; a :class:`SimulatedCluster` groups the machines
behind an :class:`~repro.mpi_sim.network.EthernetSwitch`, converts a
matrix-task workload into per-slave ``(c_j, p_j)`` pairs via the
:class:`~repro.mpi_sim.matrix_tasks.MatrixTaskModel`, and exposes the noisy
probe measurements that the calibration protocol of Section 4.2 relies on.
The resulting :class:`~repro.core.platform.Platform` is then scheduled with
the very same engine and heuristics as the theoretical experiments — which is
the point of the substitution: only the origin of the numbers changes, not
the scheduling code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.platform import Platform
from ..exceptions import PlatformError
from ..workloads.release import RngLike, as_rng
from .matrix_tasks import MatrixTaskModel
from .network import EthernetSwitch, NetworkLink

__all__ = ["SlaveMachine", "SimulatedCluster", "default_cluster"]


@dataclass(frozen=True)
class SlaveMachine:
    """One slave computer of the cluster."""

    name: str
    #: Sustained floating-point rate of the machine (flops per second).
    cpu_flops: float
    #: Bytes per second sustained by the machine's network card.
    nic_bandwidth: float
    #: One-way message latency towards this machine (seconds).
    latency: float = 1e-4
    #: Relative standard deviation of probe measurements (models OS jitter,
    #: cache effects, ... during the calibration step).
    measurement_noise: float = 0.02
    #: Available memory in bytes; probes larger than this are rejected, which
    #: mirrors the paper's remark that the machines differ in memory size.
    memory_bytes: float = 1e9

    def __post_init__(self) -> None:
        if self.cpu_flops <= 0:
            raise PlatformError(f"cpu_flops must be positive, got {self.cpu_flops}")
        if self.nic_bandwidth <= 0:
            raise PlatformError(f"nic_bandwidth must be positive, got {self.nic_bandwidth}")
        if self.latency < 0:
            raise PlatformError(f"latency must be non-negative, got {self.latency}")
        if not 0.0 <= self.measurement_noise < 1.0:
            raise PlatformError(
                f"measurement_noise must be in [0, 1), got {self.measurement_noise}"
            )
        if self.memory_bytes <= 0:
            raise PlatformError(f"memory_bytes must be positive, got {self.memory_bytes}")


class SimulatedCluster:
    """A master plus a set of :class:`SlaveMachine` behind one switch."""

    def __init__(
        self,
        machines: Sequence[SlaveMachine],
        switch: Optional[EthernetSwitch] = None,
    ) -> None:
        if not machines:
            raise PlatformError("a cluster needs at least one slave machine")
        self.machines: List[SlaveMachine] = list(machines)
        if switch is None:
            switch = EthernetSwitch(
                [NetworkLink(m.nic_bandwidth, m.latency) for m in self.machines]
            )
        if len(switch) != len(self.machines):
            raise PlatformError("switch link count does not match the machine count")
        self.switch = switch

    def __len__(self) -> int:
        return len(self.machines)

    # -- ground truth ---------------------------------------------------------
    def true_comm_time(self, slave_index: int, task_model: MatrixTaskModel) -> float:
        """Exact transfer time of one task towards one slave."""
        return self.switch.transfer_time(slave_index, task_model.message_bytes)

    def true_comp_time(self, slave_index: int, task_model: MatrixTaskModel) -> float:
        """Exact computation time of one task on one slave."""
        machine = self._machine(slave_index)
        if task_model.message_bytes > machine.memory_bytes:
            raise PlatformError(
                f"matrix of {task_model.message_bytes:.0f} bytes does not fit in "
                f"{machine.name}'s memory ({machine.memory_bytes:.0f} bytes)"
            )
        return task_model.comp_time(machine.cpu_flops)

    def base_platform(self, task_model: MatrixTaskModel) -> Platform:
        """The exact (noise-free) platform induced by one task model."""
        comm = [self.true_comm_time(j, task_model) for j in range(len(self))]
        comp = [self.true_comp_time(j, task_model) for j in range(len(self))]
        names = [m.name for m in self.machines]
        return Platform.from_times(comm, comp, names=names)

    # -- probing (what the calibration step of Section 4.2 measures) ----------
    def probe(
        self, slave_index: int, task_model: MatrixTaskModel, rng: RngLike = None
    ) -> Tuple[float, float]:
        """Send one probe matrix to a slave and time the transfer and the
        determinant computation, with measurement noise."""
        generator = as_rng(rng)
        machine = self._machine(slave_index)
        comm = self.true_comm_time(slave_index, task_model)
        comp = self.true_comp_time(slave_index, task_model)
        if machine.measurement_noise > 0.0:
            comm *= float(1.0 + generator.normal(0.0, machine.measurement_noise))
            comp *= float(1.0 + generator.normal(0.0, machine.measurement_noise))
        # A timing measurement can never be negative; clamp pathological draws.
        return max(comm, 1e-12), max(comp, 1e-12)

    def probe_all(
        self, task_model: MatrixTaskModel, rng: RngLike = None
    ) -> Tuple[List[float], List[float]]:
        """Probe every slave one after the other (as the paper does)."""
        generator = as_rng(rng)
        comm_times, comp_times = [], []
        for index in range(len(self)):
            comm, comp = self.probe(index, task_model, generator)
            comm_times.append(comm)
            comp_times.append(comp)
        return comm_times, comp_times

    # -- scaled platforms (the nc_i / np_i trick of Section 4.2) --------------
    def effective_platform(
        self,
        task_model: MatrixTaskModel,
        comm_multipliers: Sequence[int],
        comp_multipliers: Sequence[int],
    ) -> Platform:
        """Platform obtained when a task is sent ``nc_i`` times and computed
        ``np_i`` times on slave ``P_i`` (``c_i ← nc_i·c_i``, ``p_i ← np_i·p_i``)."""
        if len(comm_multipliers) != len(self) or len(comp_multipliers) != len(self):
            raise PlatformError("multiplier lists must have one entry per slave")
        for value in list(comm_multipliers) + list(comp_multipliers):
            if int(value) != value or value < 1:
                raise PlatformError("multipliers must be integers >= 1")
        comm = [
            self.true_comm_time(j, task_model) * comm_multipliers[j]
            for j in range(len(self))
        ]
        comp = [
            self.true_comp_time(j, task_model) * comp_multipliers[j]
            for j in range(len(self))
        ]
        names = [m.name for m in self.machines]
        return Platform.from_times(comm, comp, names=names)

    def describe(self) -> Dict[str, object]:
        """A dictionary summary for reports and experiment metadata."""
        return {
            "n_slaves": len(self),
            "switch": self.switch.describe(),
            "machines": [
                {
                    "name": m.name,
                    "cpu_flops": m.cpu_flops,
                    "nic_bandwidth": m.nic_bandwidth,
                    "latency": m.latency,
                }
                for m in self.machines
            ],
        }

    def _machine(self, slave_index: int) -> SlaveMachine:
        try:
            return self.machines[slave_index]
        except IndexError as exc:
            raise PlatformError(f"unknown slave index {slave_index}") from exc


def default_cluster(rng: RngLike = None) -> SimulatedCluster:
    """A five-machine heterogeneous cluster in the spirit of the paper's testbed.

    CPU speeds span roughly a 5× range (old desktops vs. a recent machine in
    2005 terms) and NIC bandwidths a 10× range (10 Mbit/s cards up to the
    switch's 100 Mbit/s).
    """
    generator = as_rng(rng)
    base_flops = [2.0e8, 4.5e8, 1.0e9, 6.0e8, 3.0e8]
    base_bandwidth = [1.2e6, 4.0e6, 1.2e7, 8.0e6, 2.5e6]
    machines = []
    for index, (flops, bandwidth) in enumerate(zip(base_flops, base_bandwidth)):
        jitter = float(generator.uniform(0.9, 1.1))
        machines.append(
            SlaveMachine(
                name=f"node{index + 1}",
                cpu_flops=flops * jitter,
                nic_bandwidth=bandwidth * jitter,
                latency=float(generator.uniform(5e-5, 2e-4)),
                measurement_noise=0.02,
                memory_bytes=float(generator.choice([2.56e8, 5.12e8, 1.0e9])),
            )
        )
    return SimulatedCluster(machines)
