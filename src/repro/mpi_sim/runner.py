"""Campaign runner for the simulated cluster.

This module glues the cluster substrate together the way the MPI driver of
Section 4 did: calibrate the machines to the requested heterogeneity class,
then run every heuristic on the resulting effective platform with the same
bag of tasks, and collect the three objectives.

The output format matches :mod:`repro.experiments.figure1`, so the Figure 1
campaign can transparently run either on directly-generated platforms (fast
path) or through the cluster substrate (``use_cluster=True``), exercising the
calibration code path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.engine import simulate
from ..core.metrics import evaluate
from ..core.platform import Platform, PlatformKind
from ..core.task import TaskSet
from ..exceptions import ExperimentError
from ..schedulers.base import PAPER_HEURISTICS, create_scheduler
from ..workloads.release import RngLike, all_at_zero, as_rng
from .calibration import CalibrationResult, calibrate_to_kind
from .cluster import SimulatedCluster, default_cluster
from .matrix_tasks import MatrixTaskModel

__all__ = ["ClusterRunResult", "run_heuristics_on_platform", "run_cluster_campaign"]


@dataclass(frozen=True)
class ClusterRunResult:
    """Metrics of every heuristic on one calibrated platform."""

    calibration: CalibrationResult
    #: {heuristic name: {metric name: value}}
    metrics: Dict[str, Dict[str, float]]

    @property
    def platform(self) -> Platform:
        """The calibrated platform the metrics were measured on."""
        return self.calibration.platform


def run_heuristics_on_platform(
    platform: Platform,
    tasks: TaskSet,
    heuristics: Sequence[str] = tuple(PAPER_HEURISTICS),
    expose_task_count: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Run a list of registered heuristics on one platform and task set.

    ``expose_task_count=True`` matches the experimental setting of the paper,
    where SLJF/SLJFWC know how many tasks the campaign will send.
    """
    if not heuristics:
        raise ExperimentError("no heuristics requested")
    results: Dict[str, Dict[str, float]] = {}
    for name in heuristics:
        scheduler = create_scheduler(name)
        schedule = simulate(scheduler, platform, tasks, expose_task_count=expose_task_count)
        metrics = evaluate(schedule)
        results[name] = {
            "makespan": metrics.makespan,
            "sum_flow": metrics.sum_flow,
            "max_flow": metrics.max_flow,
        }
    return results


def run_cluster_campaign(
    kind: PlatformKind,
    n_tasks: int = 1000,
    heuristics: Sequence[str] = tuple(PAPER_HEURISTICS),
    cluster: Optional[SimulatedCluster] = None,
    probe: Optional[MatrixTaskModel] = None,
    rng: RngLike = None,
    tasks: Optional[TaskSet] = None,
) -> ClusterRunResult:
    """One full cluster experiment: calibrate, then run every heuristic.

    Parameters
    ----------
    kind:
        Heterogeneity class to calibrate towards (one Figure 1 diagram).
    n_tasks:
        Number of identical tasks to send (1000 in the paper).
    heuristics:
        Registered scheduler names to compare.
    cluster:
        The simulated machines; a default five-node cluster is built when
        omitted.
    probe:
        Probe task model for the calibration step.
    rng:
        Seed or generator controlling the calibration draw.
    tasks:
        Explicit task set overriding the default bag of ``n_tasks`` tasks
        released at time 0 (used by the robustness experiment).
    """
    generator = as_rng(rng)
    if cluster is None:
        cluster = default_cluster(generator)
    kwargs = {} if probe is None else {"probe": probe}
    calibration = calibrate_to_kind(cluster, kind, rng=generator, **kwargs)
    if tasks is None:
        tasks = all_at_zero(n_tasks)
    metrics = run_heuristics_on_platform(calibration.platform, tasks, heuristics)
    return ClusterRunResult(calibration=calibration, metrics=metrics)
