"""Network model of the simulated cluster.

The paper's testbed connects five machines to the master through a fast
Ethernet switch (100 Mbit/s); the heterogeneity of the links "is mainly due
to the differences between the network cards".  The model used here is the
classical latency + bandwidth affine cost:

    ``transfer_time(bytes) = latency + bytes / effective_bandwidth``

where the effective bandwidth of a link is the minimum of the switch
bandwidth and the NIC bandwidth of the slave.  The one-port serialisation of
the master's sends is enforced by the engine, not here — the network module
only answers "how long does one message take on this link".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..exceptions import PlatformError

__all__ = ["NetworkLink", "EthernetSwitch"]

#: 100 Mbit/s expressed in bytes per second, the paper's switch speed.
FAST_ETHERNET_BYTES_PER_S = 100e6 / 8.0


@dataclass(frozen=True)
class NetworkLink:
    """A point-to-point link between the master and one slave."""

    #: Bytes per second sustained by the slave's network card.
    nic_bandwidth: float
    #: One-way latency in seconds (switch + card + software stack).
    latency: float = 1e-4

    def __post_init__(self) -> None:
        if not math.isfinite(self.nic_bandwidth) or self.nic_bandwidth <= 0:
            raise PlatformError(f"nic_bandwidth must be positive, got {self.nic_bandwidth}")
        if not math.isfinite(self.latency) or self.latency < 0:
            raise PlatformError(f"latency must be non-negative, got {self.latency}")


class EthernetSwitch:
    """A single switch connecting the master to every slave.

    The switch caps the bandwidth of every link; per-link heterogeneity comes
    from the slaves' network cards, matching the description of Section 4.2.
    """

    def __init__(
        self,
        links: Sequence[NetworkLink],
        switch_bandwidth: float = FAST_ETHERNET_BYTES_PER_S,
    ) -> None:
        if not links:
            raise PlatformError("a switch needs at least one link")
        if switch_bandwidth <= 0:
            raise PlatformError(f"switch_bandwidth must be positive, got {switch_bandwidth}")
        self.links: List[NetworkLink] = list(links)
        self.switch_bandwidth = switch_bandwidth

    def __len__(self) -> int:
        return len(self.links)

    def effective_bandwidth(self, slave_index: int) -> float:
        """Bytes per second the master can push towards one slave."""
        link = self._link(slave_index)
        return min(link.nic_bandwidth, self.switch_bandwidth)

    def transfer_time(self, slave_index: int, message_bytes: float) -> float:
        """Time to transfer one message to one slave."""
        if message_bytes < 0:
            raise PlatformError(f"message size must be non-negative, got {message_bytes}")
        link = self._link(slave_index)
        return link.latency + message_bytes / self.effective_bandwidth(slave_index)

    def describe(self) -> Dict[str, object]:
        """A dictionary summary for reports and experiment metadata."""
        return {
            "switch_bandwidth": self.switch_bandwidth,
            "links": [
                {"nic_bandwidth": link.nic_bandwidth, "latency": link.latency}
                for link in self.links
            ],
        }

    def _link(self, slave_index: int) -> NetworkLink:
        try:
            return self.links[slave_index]
        except IndexError as exc:
            raise PlatformError(f"unknown slave index {slave_index}") from exc
