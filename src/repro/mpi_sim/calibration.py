"""Calibration protocol of Section 4.2.

The paper dials the heterogeneity of its physical testbed as follows:

    "in a first step, we send one single matrix to each slave one after
    another, and we calculate the time needed to send this matrix and to
    calculate its determinant on each slave.  Thus, we obtain an estimation
    of c_i and p_i [...].  Then we determine the number of times this matrix
    should be sent (nc_i) and the number of times its determinant should be
    calculated (np_i) on each slave in order to modify the platform
    characteristics so as to reach the desired level of heterogeneity.
    Then, a task (matrix) assigned on P_i will actually be sent nc_i times
    to P_i (so that c_i ← nc_i·c_i), and its determinant will actually be
    calculated np_i times by P_i (so that p_i ← np_i·p_i)."

:func:`calibrate` reproduces that protocol on the simulated cluster: probe
every slave once (with measurement noise), pick integer multipliers that
bring the *measured* values as close as possible to the requested targets,
and return both the multipliers and the *effective* platform (computed from
the true, noise-free machine parameters — the analogue of what the physical
platform would actually deliver during the campaign).

Because the multipliers are integers, the effective platform only
approximates the targets; :attr:`CalibrationResult.relative_error` reports
how far off each parameter ends up, and the calibration raises when the
request is unreachable (target smaller than a single probe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.platform import Platform, PlatformKind
from ..exceptions import CalibrationError
from ..workloads.platforms import PAPER_COMM_RANGE, PAPER_COMP_RANGE
from ..workloads.release import RngLike, as_rng
from .cluster import SimulatedCluster
from .matrix_tasks import MatrixTaskModel

__all__ = ["CalibrationResult", "calibrate", "calibrate_to_kind"]

#: Default probe matrix: small enough that its cost on the slowest machine
#: and link stays below the paper's target ranges (so an integer number of
#: repetitions can reach any target), large enough for the timings to
#: dominate the latency term.
DEFAULT_PROBE = MatrixTaskModel(matrix_size=200)

#: Maximum integer multiplier the protocol will use; a request needing more
#: repetitions than this is considered unreachable.
MAX_MULTIPLIER = 10_000


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one calibration run."""

    #: Probe measurements (with noise), one per slave.
    measured_comm: Tuple[float, ...]
    measured_comp: Tuple[float, ...]
    #: Integer repetition counts nc_i / np_i chosen by the protocol.
    comm_multipliers: Tuple[int, ...]
    comp_multipliers: Tuple[int, ...]
    #: Targets the protocol aimed for.
    target_comm: Tuple[float, ...]
    target_comp: Tuple[float, ...]
    #: The platform the heuristics actually experience (true machine
    #: parameters times the integer multipliers).
    platform: Platform

    @property
    def relative_error(self) -> Dict[str, List[float]]:
        """Relative deviation of the effective platform from the targets."""
        comm_err = [
            abs(c - t) / t for c, t in zip(self.platform.comm_times, self.target_comm)
        ]
        comp_err = [
            abs(p - t) / t for p, t in zip(self.platform.comp_times, self.target_comp)
        ]
        return {"comm": comm_err, "comp": comp_err}

    @property
    def max_relative_error(self) -> float:
        """Worst relative calibration error across both dimensions."""
        errors = self.relative_error
        return max(errors["comm"] + errors["comp"])


def _pick_multiplier(measured: float, target: float, what: str, slave: int) -> int:
    """Integer repetition count bringing ``measured·n`` closest to ``target``."""
    if target <= 0:
        raise CalibrationError(f"{what} target for slave {slave} must be positive")
    ratio = target / measured
    if ratio > MAX_MULTIPLIER:
        raise CalibrationError(
            f"{what} target {target:g} for slave {slave} needs more than "
            f"{MAX_MULTIPLIER} repetitions of the probe"
        )
    best = max(1, int(round(ratio)))
    # Rounding may not be optimal in relative terms; check the neighbours.
    candidates = [n for n in (best - 1, best, best + 1) if n >= 1]
    return min(candidates, key=lambda n: abs(n * measured - target))


def calibrate(
    cluster: SimulatedCluster,
    target_comm: Sequence[float],
    target_comp: Sequence[float],
    probe: MatrixTaskModel = DEFAULT_PROBE,
    rng: RngLike = None,
) -> CalibrationResult:
    """Run the Section 4.2 calibration protocol towards explicit targets."""
    if len(target_comm) != len(cluster) or len(target_comp) != len(cluster):
        raise CalibrationError("targets must have one entry per slave")
    generator = as_rng(rng)
    measured_comm, measured_comp = cluster.probe_all(probe, generator)

    comm_multipliers = [
        _pick_multiplier(measured_comm[j], target_comm[j], "communication", j)
        for j in range(len(cluster))
    ]
    comp_multipliers = [
        _pick_multiplier(measured_comp[j], target_comp[j], "computation", j)
        for j in range(len(cluster))
    ]
    platform = cluster.effective_platform(probe, comm_multipliers, comp_multipliers)
    return CalibrationResult(
        measured_comm=tuple(measured_comm),
        measured_comp=tuple(measured_comp),
        comm_multipliers=tuple(comm_multipliers),
        comp_multipliers=tuple(comp_multipliers),
        target_comm=tuple(float(t) for t in target_comm),
        target_comp=tuple(float(t) for t in target_comp),
        platform=platform,
    )


def calibrate_to_kind(
    cluster: SimulatedCluster,
    kind: PlatformKind,
    probe: MatrixTaskModel = DEFAULT_PROBE,
    rng: RngLike = None,
    comm_range: Tuple[float, float] = PAPER_COMM_RANGE,
    comp_range: Tuple[float, float] = PAPER_COMP_RANGE,
) -> CalibrationResult:
    """Calibrate the cluster towards a random platform of the given class.

    This is the combination the Figure 1 campaign uses: draw target
    ``(c_i, p_i)`` values from the paper's ranges with the homogeneity
    property of the requested diagram, then reach them with the nc/np trick.

    Targets are drawn no smaller than the probe's own cost on each slave
    (otherwise no integer number of repetitions could reach them); in
    practice the probe is far cheaper than the paper's ranges.
    """
    generator = as_rng(rng)
    n = len(cluster)
    measured_comm, measured_comp = cluster.probe_all(probe, generator)

    def draw(value_range: Tuple[float, float], floor: List[float], homogeneous: bool) -> List[float]:
        low, high = value_range
        low = max(low, max(floor))
        if low > high:
            raise CalibrationError(
                f"probe cost {max(floor):g} exceeds the requested range {value_range}"
            )
        if homogeneous:
            value = float(generator.uniform(low, high))
            return [value] * n
        return [float(v) for v in generator.uniform(low, high, size=n)]

    comm_homog = kind in (PlatformKind.HOMOGENEOUS, PlatformKind.COMMUNICATION_HOMOGENEOUS)
    comp_homog = kind in (PlatformKind.HOMOGENEOUS, PlatformKind.COMPUTATION_HOMOGENEOUS)
    target_comm = draw(comm_range, measured_comm, comm_homog)
    target_comp = draw(comp_range, measured_comp, comp_homog)
    return calibrate(cluster, target_comm, target_comp, probe=probe, rng=generator)
