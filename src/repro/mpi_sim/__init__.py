"""Simulated MPI cluster substrate (substitute for the paper's testbed).

The package models the five-machine Ethernet testbed of Section 4.2 —
machines, network cards, switch, matrix-determinant tasks and the
calibration protocol — and feeds the resulting platforms to the same engine
and heuristics as the theoretical experiments.
"""

from .calibration import CalibrationResult, calibrate, calibrate_to_kind
from .cluster import SimulatedCluster, SlaveMachine, default_cluster
from .matrix_tasks import MatrixTaskModel
from .network import EthernetSwitch, NetworkLink
from .runner import ClusterRunResult, run_cluster_campaign, run_heuristics_on_platform

__all__ = [
    "CalibrationResult",
    "ClusterRunResult",
    "EthernetSwitch",
    "MatrixTaskModel",
    "NetworkLink",
    "SimulatedCluster",
    "SlaveMachine",
    "calibrate",
    "calibrate_to_kind",
    "default_cluster",
    "run_cluster_campaign",
    "run_heuristics_on_platform",
]
