#!/usr/bin/env python
"""Docstring-coverage gate (stdlib-only stand-in for ``interrogate``).

Counts docstrings on modules, public classes and public functions/methods
under the given paths and fails when coverage drops below ``--fail-under``.
The container image does not ship ``pydocstyle``/``interrogate``, so this
gate is implemented on :mod:`ast` alone; semantics follow interrogate's
defaults closely:

* private names (leading underscore) and dunders are exempt, including
  everything inside a private class;
* nested (closure) functions are exempt — only module- and class-level
  definitions count;
* ``# pragma: no docstring`` on the ``def``/``class`` line exempts one
  definition (for intentionally undocumented stubs).

Usage (CI runs this against ``src/repro``)::

    python tools/check_docstrings.py --fail-under 95 src/repro

``tests/test_docstring_coverage.py`` runs the same check as part of the
tier-1 suite, so the gate holds locally as well as in CI.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, NamedTuple


class Definition(NamedTuple):
    """One checkable definition and whether it carries a docstring."""

    path: Path
    line: int
    kind: str
    name: str
    documented: bool


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _pragma_exempt(source_lines: List[str], node: ast.AST) -> bool:
    line = source_lines[node.lineno - 1] if node.lineno <= len(source_lines) else ""
    return "pragma: no docstring" in line


def iter_definitions(path: Path) -> Iterator[Definition]:
    """Yield the module plus every public class/function definition in it."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()

    yield Definition(path, 1, "module", path.stem, ast.get_docstring(tree) is not None)

    # Walk module- and class-level scopes only: functions nested inside
    # functions are implementation details.
    scopes = [tree]
    while scopes:
        scope = scopes.pop()
        for node in scope.body:
            if isinstance(node, ast.ClassDef):
                if _is_public(node.name):
                    if not _pragma_exempt(lines, node):
                        yield Definition(
                            path, node.lineno, "class", node.name,
                            ast.get_docstring(node) is not None,
                        )
                    scopes.append(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(node.name) and not _pragma_exempt(lines, node):
                    yield Definition(
                        path, node.lineno, "function", node.name,
                        ast.get_docstring(node) is not None,
                    )


def collect(paths: List[Path]) -> List[Definition]:
    """All checkable definitions under the given files/directories."""
    definitions: List[Definition] = []
    for root in paths:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            definitions.extend(iter_definitions(file))
    return definitions


def main(argv: List[str] = None) -> int:
    """Entry point; returns a shell exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", type=Path, help="files or directories")
    parser.add_argument(
        "--fail-under", type=float, default=95.0, metavar="PCT",
        help="minimum docstring coverage percentage (default 95)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="list every undocumented definition"
    )
    args = parser.parse_args(argv)

    definitions = collect(args.paths)
    if not definitions:
        print("error: no python definitions found", file=sys.stderr)
        return 2
    missing = [d for d in definitions if not d.documented]
    covered = len(definitions) - len(missing)
    coverage = 100.0 * covered / len(definitions)

    if args.verbose or coverage < args.fail_under:
        for d in missing:
            print(f"{d.path}:{d.line}: undocumented {d.kind} {d.name!r}")
    print(
        f"docstring coverage: {covered}/{len(definitions)} = {coverage:.1f}% "
        f"(threshold {args.fail_under:.1f}%)"
    )
    if coverage < args.fail_under:
        print("FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
