#!/usr/bin/env python
"""Golden-trace regression corpus: canonical traces under ``tests/golden/``.

The corpus pins the engine's *exact* event-level behaviour — one JSON file
per built-in scenario, each holding the canonical trace rows (see
:func:`repro.core.kernel.trace_rows`) of all seven paper heuristics on a
fixed platform and seed.  ``tests/test_golden_traces.py`` replays the corpus
on every run; any engine change that moves a single float shows up as a
focused diff of the committed JSON instead of a distant metric drift.

Intentional engine changes update the corpus in one reviewed diff::

    PYTHONPATH=src python tools/golden_traces.py --regen

and ``--check`` (the default) verifies the committed files, exiting
non-zero on drift — the same comparison the test-suite performs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402  (path bootstrap above)

from repro.core.engine import simulate  # noqa: E402
from repro.core.kernel import trace_rows  # noqa: E402
from repro.core.platform import Platform  # noqa: E402
from repro.scenarios import create_scenario  # noqa: E402
from repro.schedulers.base import PAPER_HEURISTICS, create_scheduler  # noqa: E402

__all__ = ["GOLDEN_DIR", "GOLDEN_SCENARIOS", "build_corpus", "main"]

#: Where the committed corpus lives.
GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"

#: The three built-in scenarios the corpus covers: the static baseline plus
#: the two dynamic archetypes (gradual speed decay, hard outage).
GOLDEN_SCENARIOS = ("static", "degrading-worker", "node-failure")

#: Fixed corpus parameters — part of each file's recorded provenance.
GOLDEN_PLATFORM = {"comm": [0.05, 0.09, 0.07, 0.12], "comp": [0.6, 1.1, 0.9, 1.4]}
GOLDEN_TASKS = 25
GOLDEN_SEED = 7


def build_corpus() -> Dict[str, Dict]:
    """Compute the full corpus: ``{scenario: payload}`` with trace rows.

    Each payload records its generation parameters next to the traces, so a
    reviewer can reproduce any file from the JSON alone.
    """
    platform = Platform.from_times(GOLDEN_PLATFORM["comm"], GOLDEN_PLATFORM["comp"])
    corpus: Dict[str, Dict] = {}
    for scenario_name in GOLDEN_SCENARIOS:
        scenario = create_scenario(scenario_name)
        instance = scenario.build(
            platform, GOLDEN_TASKS, np.random.default_rng(GOLDEN_SEED)
        )
        traces: Dict[str, List[List[float]]] = {}
        for name in PAPER_HEURISTICS:
            schedule = simulate(
                create_scheduler(name),
                platform,
                instance.tasks,
                expose_task_count=True,
                timeline=instance.timeline,
            )
            traces[name] = trace_rows(schedule)
        corpus[scenario_name] = {
            "scenario": scenario_name,
            "platform": GOLDEN_PLATFORM,
            "n_tasks": GOLDEN_TASKS,
            "seed": GOLDEN_SEED,
            "traces": traces,
        }
    return corpus


def _path_for(scenario_name: str) -> Path:
    return GOLDEN_DIR / f"{scenario_name}.json"


def _write(corpus: Dict[str, Dict]) -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for scenario_name, payload in corpus.items():
        _path_for(scenario_name).write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {_path_for(scenario_name)}")


def _check(corpus: Dict[str, Dict]) -> int:
    drift = 0
    for scenario_name, payload in corpus.items():
        path = _path_for(scenario_name)
        if not path.exists():
            print(f"MISSING {path} (run with --regen)")
            drift += 1
            continue
        committed = json.loads(path.read_text(encoding="utf-8"))
        if committed == payload:
            print(f"ok      {path}")
            continue
        drift += 1
        for name in PAPER_HEURISTICS:
            if committed.get("traces", {}).get(name) != payload["traces"][name]:
                print(f"DRIFT   {path}: {name} trace changed")
    return drift


def main(argv=None) -> int:
    """CLI entry point: check the committed corpus or regenerate it."""
    parser = argparse.ArgumentParser(
        description="Check or regenerate the golden-trace corpus in tests/golden/."
    )
    parser.add_argument(
        "--regen",
        action="store_true",
        help="rewrite the corpus from the current engine (default: check only)",
    )
    args = parser.parse_args(argv)

    corpus = build_corpus()
    if args.regen:
        _write(corpus)
        return 0
    return 1 if _check(corpus) else 0


if __name__ == "__main__":
    sys.exit(main())
