#!/usr/bin/env python
"""Timed engine + service benchmark suite — the repo's perf trajectory.

Runs a small, fixed set of named benchmarks and writes their timings to a
JSON file (default ``BENCH_service.json``) with the schema::

    {"_meta": {"git_sha": str, "runs": int},
     bench_name: {"mean_s": float, "min_s": float, "max_s": float,
                  "runs": int, "params": {...}}}

so future PRs can diff performance against the committed baseline instead
of guessing.  ``min_s`` is the noise-robust statistic to compare across
commits; ``mean_s``/``max_s`` expose the jitter of the recording machine,
and ``_meta.git_sha`` pins which commit produced the numbers.  Wall-clock
numbers are hardware-dependent — the file is a *trajectory*, not a gate;
CI runs this script in informational mode only.

The suite covers the layers a serving regression could hide in:

* ``engine_simulate`` — the raw one-port engine (1000-task bag, 5 workers);
* ``engine_simulate_batched`` — the same workload, 64 jobs at once through
  the ``array`` kernel backend vs. the reference kernel; records the
  ``speedup_vs_reference`` of the vectorized lockstep pass;
* ``request_canonicalize`` — request validation + canonical hashing, the
  per-request overhead every service call pays;
* ``service_unique_stream`` — the dispatcher on an all-miss stream
  (every request simulates);
* ``service_cached_stream`` — the same stream against a warm result cache
  (the steady-state serving hot path);
* ``service_persistent_rps`` — the persistent asyncio TCP server under
  sustained concurrent connections; records steady-state RPS plus p50/p99
  request latency alongside the usual wall-clock stats;
* ``service_chaos_rps`` — the same persistent server *crashed and
  restarted mid-stream* under a resilient client (timeout + retry +
  circuit breaker): the cost of riding through a failure, and the proof
  that zero requests are lost while doing so;
* ``service_warm_restart`` — restart recovery with the durability layer:
  the first full stream served after a restart, timed warm (journal
  replayed into the cache) vs. cold (every request re-simulates); records
  the ``speedup_vs_cold`` recovery delta.
* ``service_observability_overhead`` — the cached (hot-path) stream served
  with tracing off vs. on (every request opting in): records both RPS
  figures and their ``rps_regression``, the number the CI smoke gates at
  5% to keep telemetry effectively free.

Run with::

    PYTHONPATH=src python tools/run_benchmarks.py --output BENCH_service.json
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import io
import json
import math
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.engine import simulate  # noqa: E402  (path bootstrap above)
from repro.core.kernel import KernelJob, create_kernel  # noqa: E402
from repro.core.platform import Platform  # noqa: E402
from repro.schedulers.base import create_scheduler  # noqa: E402
from repro.service.async_server import AsyncScheduleServer  # noqa: E402
from repro.service.cache import LRUResultCache  # noqa: E402
from repro.service.dispatcher import ScheduleService  # noqa: E402
from repro.service.observability import Observability  # noqa: E402
from repro.service.persistence import ShardPersistence  # noqa: E402
from repro.service.schema import canonicalize_request  # noqa: E402
from repro.service.server import serve_lines  # noqa: E402
from repro.service.sharding import ShardedClient  # noqa: E402
from repro.service.streams import synthetic_request_lines  # noqa: E402
from repro.workloads.release import all_at_zero  # noqa: E402


def _time(fn: Callable[[], Any], runs: int) -> Dict[str, float]:
    """Wall-clock stats of ``fn`` over ``runs`` calls (1 warm-up).

    Returns ``{"mean_s", "min_s", "max_s"}``; ``min_s`` is the statistic to
    diff across commits (least sensitive to scheduler noise on the
    recording machine).
    """
    fn()  # warm-up: imports, pools, caches
    samples = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "mean_s": sum(samples) / runs,
        "min_s": min(samples),
        "max_s": max(samples),
    }


def _git_sha() -> str:
    """The repository HEAD at recording time, or ``"unknown"``."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent.parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _bench_platform() -> Platform:
    return Platform.from_times(
        [0.05, 0.06, 0.07, 0.08, 0.09], [0.5, 0.75, 1.0, 1.25, 1.5]
    )


def bench_engine_simulate(runs: int) -> Dict[str, Any]:
    """Raw engine cost: 1000-task bag on a 5-worker heterogeneous platform."""
    platform = _bench_platform()
    tasks = all_at_zero(1000)
    scheduler = create_scheduler("LS")

    def run() -> None:
        simulate(scheduler, platform, tasks, expose_task_count=True)

    return {
        **_time(run, runs),
        "runs": runs,
        "params": {"n_tasks": 1000, "n_workers": 5, "scheduler": "LS"},
    }


def bench_engine_simulate_batched(runs: int) -> Dict[str, Any]:
    """64 engine_simulate workloads at once: array kernel vs. reference.

    Records the ``array`` backend's batch time plus the reference kernel's
    on the identical job list, and their ratio (``speedup_vs_reference``,
    computed from ``min_s`` of each).  The two backends are trace-equal by
    contract (``tests/differential/``), so the ratio compares pure
    execution strategy, not output.
    """
    platform = _bench_platform()
    tasks = all_at_zero(1000)
    jobs = [KernelJob("LS", platform, tasks) for _ in range(64)]
    array_kernel = create_kernel("array")
    reference_kernel = create_kernel("reference")

    batched = _time(lambda: array_kernel.run_batch(jobs), runs)
    reference = _time(lambda: reference_kernel.run_batch(jobs), runs)
    return {
        **batched,
        "reference_mean_s": reference["mean_s"],
        "reference_min_s": reference["min_s"],
        "speedup_vs_reference": reference["min_s"] / batched["min_s"],
        "runs": runs,
        "params": {
            "batch": 64,
            "n_tasks": 1000,
            "n_workers": 5,
            "scheduler": "LS",
            "backend": "array",
        },
    }


def bench_request_canonicalize(runs: int) -> Dict[str, Any]:
    """Validation + canonical-hash overhead for 1000 raw request payloads."""
    payloads = [json.loads(line) for line in synthetic_request_lines(1000)]

    def run() -> None:
        for payload in payloads:
            canonicalize_request(payload)

    return {
        **_time(run, runs),
        "runs": runs,
        "params": {"n_requests": 1000},
    }


def _serve(lines: List[str], cache: LRUResultCache) -> None:
    with ScheduleService(workers=1, batch_size=16, max_queue=1024, cache=cache) as svc:
        serve_lines(iter(lines), svc, io.StringIO())


def bench_service_unique_stream(runs: int, n_requests: int) -> Dict[str, Any]:
    """Dispatcher on an all-miss stream: every request simulates."""
    lines = synthetic_request_lines(n_requests)

    def run() -> None:
        _serve(lines, LRUResultCache(max_entries=4 * n_requests))

    return {
        **_time(run, runs),
        "runs": runs,
        "params": {"n_requests": n_requests, "cache": "cold"},
    }


def bench_service_cached_stream(runs: int, n_requests: int) -> Dict[str, Any]:
    """Dispatcher on the same stream with a warm cache: zero simulations."""
    lines = synthetic_request_lines(n_requests)
    cache = LRUResultCache(max_entries=4 * n_requests)
    _serve(lines, cache)  # warm the cache once, outside the timed region

    def run() -> None:
        _serve(lines, cache)

    return {
        **_time(run, runs),
        "runs": runs,
        "params": {"n_requests": n_requests, "cache": "warm"},
    }


def bench_service_persistent_rps(runs: int, n_requests: int) -> Dict[str, Any]:
    """Persistent TCP server under sustained concurrent connections.

    Boots one in-process :class:`AsyncScheduleServer` on an ephemeral port,
    then drives it with 4 concurrent :class:`ShardedClient` connections,
    each streaming the full synthetic request file.  Besides the standard
    wall-clock stats this records the steady-state ``rps`` (responses per
    second over the whole run) and ``p50_ms``/``p99_ms`` per-request
    latency (submit-to-response, nearest-rank over every request of every
    run) — the serving numbers the CI smoke diffs informationally.
    """
    lines = synthetic_request_lines(n_requests)
    connections = 4
    latencies: List[float] = []

    def percentile(sorted_values: List[float], q: float) -> float:
        rank = min(
            len(sorted_values) - 1, max(0, math.ceil(q * len(sorted_values)) - 1)
        )
        return sorted_values[rank]

    async def one_client(address) -> None:
        async with ShardedClient([address], max_inflight=32) as client:
            window: List[Any] = []
            for line in lines:
                while len(window) >= 32:
                    future, t0 = window.pop(0)
                    await future
                    latencies.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                window.append((await client.submit(line), t0))
            for future, t0 in window:
                await future
                latencies.append(time.perf_counter() - t0)

    async def drive() -> None:
        service = ScheduleService(
            workers=1, batch_size=16, max_queue=4096, cache=None
        )
        async with AsyncScheduleServer(service, port=0) as server:
            await asyncio.gather(
                *(one_client(server.address) for _ in range(connections))
            )

    def run() -> None:
        asyncio.run(drive())

    timing = _time(run, runs)
    latencies.sort()
    # One warm-up + `runs` timed passes contributed latencies; RPS uses the
    # noise-robust min_s, matching how timings diff across commits.
    responses_per_run = n_requests * connections
    return {
        **timing,
        "rps": responses_per_run / timing["min_s"],
        "p50_ms": percentile(latencies, 0.50) * 1e3,
        "p99_ms": percentile(latencies, 0.99) * 1e3,
        "runs": runs,
        "params": {
            "n_requests": n_requests,
            "connections": connections,
            "shards": 1,
            "max_inflight": 32,
            "cache": "none",
        },
    }


def bench_service_chaos_rps(runs: int, n_requests: int) -> Dict[str, Any]:
    """Persistent server crashed and restarted mid-stream, client riding through.

    Halfway through the stream the server is torn down and a replacement
    is booted on the same port — the in-process analogue of a supervisor
    restart (``tools/chaos.py`` does it against real processes).  The
    client runs with the full resilience stack (per-request timeout,
    bounded retry, breaker threshold 1 with a short cooldown), so every
    request resolves terminally: served, retried onto the restarted
    server, or degraded to byte-identical local execution.  Records the
    terminal-response RPS plus the ``ok`` share — a chaos run that loses
    requests fails the benchmark outright.
    """
    lines = synthetic_request_lines(n_requests)
    ok_counts: List[int] = []

    def make_server(host: str, port: int) -> AsyncScheduleServer:
        return AsyncScheduleServer(
            ScheduleService(workers=1, batch_size=16, max_queue=4096, cache=None),
            host,
            port,
        )

    async def drive() -> None:
        server = make_server("127.0.0.1", 0)
        await server.start()
        host, port = server.address
        client = ShardedClient(
            [(host, port)],
            max_inflight=32,
            request_timeout=5.0,
            max_retries=2,
            retry_backoff=0.01,
            breaker_threshold=1,
            breaker_cooldown=0.05,
        )
        await client.connect()
        try:
            futures = []
            for index, line in enumerate(lines):
                if index == n_requests // 2:
                    await server.close()  # the crash...
                    server = make_server(host, port)
                    await server.start()  # ...and the supervisor's restart
                futures.append(await client.submit(line))
            responses = await asyncio.gather(*futures)
        finally:
            await client.close()
            await server.close()
        if len(responses) != n_requests:
            raise RuntimeError(
                f"chaos benchmark lost requests: {len(responses)}/{n_requests}"
            )
        ok_counts.append(
            sum(1 for text in responses if json.loads(text).get("status") == "ok")
        )

    def run() -> None:
        asyncio.run(drive())

    timing = _time(run, runs)
    return {
        **timing,
        "rps": n_requests / timing["min_s"],
        "ok_fraction": min(ok_counts) / n_requests,
        "runs": runs,
        "params": {
            "n_requests": n_requests,
            "crash_at": n_requests // 2,
            "max_retries": 2,
            "breaker_threshold": 1,
            "cache": "none",
        },
    }


def bench_service_warm_restart(runs: int, n_requests: int) -> Dict[str, Any]:
    """Cold vs. warm restart: the first full stream served after a restart.

    A "previous incarnation" serves the stream once with durability on,
    journaling every result.  The timed region is then restart recovery —
    build a fresh cache and serve the whole stream again — in two
    variants: **cold** (no persistence: every request re-simulates, the
    pre-durability behaviour) and **warm** (journal replayed via
    ``warm_load`` before serving: every request is a warm cache hit).
    The headline stats time the warm variant, with the cold variant's
    timings and the ``speedup_vs_cold`` ratio alongside — the crash
    recovery delta the durability layer buys.
    """
    lines = synthetic_request_lines(n_requests)
    state_dir = Path(tempfile.mkdtemp(prefix="repro-bench-warm-"))
    seed_cache = LRUResultCache(
        max_entries=4 * n_requests,
        persistence=ShardPersistence(state_dir, journal_max_entries=4 * n_requests),
    )
    _serve(lines, seed_cache)  # the dead shard's lifetime: journal every result
    seed_cache.close()

    def cold_restart() -> None:
        _serve(lines, LRUResultCache(max_entries=4 * n_requests))

    def warm_restart() -> None:
        cache = LRUResultCache(
            max_entries=4 * n_requests,
            persistence=ShardPersistence(
                state_dir, journal_max_entries=4 * n_requests
            ),
        )
        replayed = cache.warm_load()  # replay is part of recovery, so timed
        _serve(lines, cache)
        cache.close()
        if replayed == 0 or cache.warm_hits == 0:
            raise RuntimeError("warm restart served nothing from replayed state")

    cold = _time(cold_restart, runs)
    warm = _time(warm_restart, runs)
    return {
        **warm,
        "cold_mean_s": cold["mean_s"],
        "cold_min_s": cold["min_s"],
        "speedup_vs_cold": cold["min_s"] / warm["min_s"],
        "runs": runs,
        "params": {"n_requests": n_requests, "recovery": "journal-replay"},
    }


def bench_service_observability_overhead(runs: int, n_requests: int) -> Dict[str, Any]:
    """Tracing off vs. on across the cached hot path: telemetry's price.

    The warm-cached stream is the most overhead-sensitive path (zero
    simulations, so per-request bookkeeping is the whole cost).  The
    headline variant is the *deployment* configuration: service started
    with ``--trace`` and every 16th request opting in with
    ``"trace": true`` — sampled tracing, the way traces are meant to be
    collected in steady state.  ``rps_regression`` (headline vs. the
    tracing-off baseline) is the value the CI smoke asserts stays under
    5%.  The worst case — **every** request opting in, so span capture
    and trace serialization on each response — is recorded alongside as
    ``traced_all_*``; it prices one traced response (~tens of µs), not a
    realistic serving mix.  Each variant keeps one warm service alive
    for the whole measurement; trials time short interleaved regions and
    the regression is the median of per-trial variant/baseline ratios,
    which cancels the machine-load drift that would otherwise swallow a
    few-percent signal.
    """
    lines = synthetic_request_lines(n_requests)
    sample_every = 16

    def opted_in(stream: List[str], every: int) -> List[str]:
        out = []
        for index, line in enumerate(stream):
            if index % every == 0:
                payload = json.loads(line)
                payload["trace"] = True
                line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            out.append(line)
        return out

    passes = 2

    def make_runner(
        stack: contextlib.ExitStack, stream: List[str], trace: bool
    ) -> Callable[[], None]:
        observability = Observability(trace=trace)
        cache = LRUResultCache(
            max_entries=4 * n_requests, registry=observability.registry
        )
        service = stack.enter_context(
            ScheduleService(
                workers=1,
                batch_size=16,
                max_queue=1024,
                cache=cache,
                observability=observability,
            )
        )

        def run() -> None:
            for _ in range(passes):
                serve_lines(iter(stream), service, io.StringIO())

        run()  # warm the variant's cache outside the timed region
        return run

    # Drift-robust timing: the services stay up across the whole
    # measurement (no worker spawn inside timed regions), each trial
    # times the three variants back-to-back over a short region, and
    # only the *ratios* variant/baseline are kept; the regression is the
    # median ratio across trials.  Machine-load drift (CPU steal on
    # shared runners) scales whole trials and cancels in their ratios,
    # where a min-of-absolute-times estimator would swallow the
    # few-percent signal whole.
    trials = max(10 * runs, 40)
    samples: Dict[str, List[float]] = {}
    with contextlib.ExitStack() as stack:
        runners = {
            "baseline": make_runner(stack, lines, trace=False),
            "sampled": make_runner(stack, opted_in(lines, sample_every), trace=True),
            "traced_all": make_runner(stack, opted_in(lines, 1), trace=True),
        }
        samples = {name: [] for name in runners}
        for _ in range(trials):
            for name, run in runners.items():
                start = time.perf_counter()
                run()
                samples[name].append(time.perf_counter() - start)

    def stats(name: str) -> Dict[str, float]:
        values = samples[name]
        return {
            "mean_s": sum(values) / len(values),
            "min_s": min(values),
            "max_s": max(values),
        }

    def median_ratio(name: str) -> float:
        ratios = sorted(
            variant / base
            for variant, base in zip(samples[name], samples["baseline"])
        )
        middle = len(ratios) // 2
        if len(ratios) % 2:
            return ratios[middle]
        return (ratios[middle - 1] + ratios[middle]) / 2.0

    baseline = stats("baseline")
    sampled = stats("sampled")
    traced_all = stats("traced_all")
    responses_per_run = passes * n_requests
    baseline_rps = responses_per_run / baseline["min_s"]
    sampled_ratio = median_ratio("sampled")
    traced_all_ratio = median_ratio("traced_all")
    return {
        **sampled,
        "baseline_mean_s": baseline["mean_s"],
        "baseline_min_s": baseline["min_s"],
        "baseline_rps": baseline_rps,
        "rps": baseline_rps / sampled_ratio,
        "rps_regression": 1.0 - 1.0 / sampled_ratio,
        "traced_all_min_s": traced_all["min_s"],
        "traced_all_rps": baseline_rps / traced_all_ratio,
        "traced_all_rps_regression": 1.0 - 1.0 / traced_all_ratio,
        "runs": trials,
        "params": {
            "n_requests": n_requests,
            "passes": passes,
            "cache": "warm",
            "trace": f"1-in-{sample_every} sampled",
            "timing": "interleaved median-ratio",
        },
    }


def run_suite(runs: int, n_requests: int) -> Dict[str, Dict[str, Any]]:
    """Execute every benchmark; returns the ``BENCH_service.json`` payload."""
    return {
        "_meta": {"git_sha": _git_sha(), "runs": runs},
        "engine_simulate": bench_engine_simulate(runs),
        "engine_simulate_batched": bench_engine_simulate_batched(runs),
        "request_canonicalize": bench_request_canonicalize(runs),
        "service_unique_stream": bench_service_unique_stream(runs, n_requests),
        "service_cached_stream": bench_service_cached_stream(runs, n_requests),
        "service_persistent_rps": bench_service_persistent_rps(runs, n_requests),
        "service_chaos_rps": bench_service_chaos_rps(runs, n_requests),
        "service_warm_restart": bench_service_warm_restart(runs, n_requests),
        "service_observability_overhead": bench_service_observability_overhead(
            runs, n_requests
        ),
    }


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Run the timed engine+service suite and write BENCH_service.json."
    )
    parser.add_argument(
        "--output", default="BENCH_service.json", help="where to write the results"
    )
    parser.add_argument(
        "--runs", type=int, default=3, help="timed repetitions per benchmark"
    )
    parser.add_argument(
        "--requests", type=int, default=64, help="stream length of the service benchmarks"
    )
    args = parser.parse_args(argv)
    if args.runs < 1 or args.requests < 1:
        parser.error("--runs and --requests must be >= 1")

    results = run_suite(args.runs, args.requests)
    Path(args.output).write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    benches = {name: entry for name, entry in results.items() if name != "_meta"}
    width = max(len(name) for name in benches)
    for name, entry in sorted(benches.items()):
        extra = ""
        if "speedup_vs_reference" in entry:
            extra = f"  ({entry['speedup_vs_reference']:.1f}x vs reference)"
        print(
            f"{name:<{width}}  {entry['mean_s'] * 1e3:9.2f} ms  "
            f"(min {entry['min_s'] * 1e3:.2f}, x{entry['runs']}){extra}"
        )
    print(f"git sha: {results['_meta']['git_sha']}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
