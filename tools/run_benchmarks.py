#!/usr/bin/env python
"""Timed engine + service benchmark suite — the repo's perf trajectory.

Runs a small, fixed set of named benchmarks and writes their timings to a
JSON file (default ``BENCH_service.json``) with the schema::

    {bench_name: {"mean_s": float, "runs": int, "params": {...}}}

so future PRs can diff performance against the committed baseline instead
of guessing.  Wall-clock numbers are hardware-dependent — the file is a
*trajectory*, not a gate; CI runs this script in informational mode only.

The suite covers the layers a serving regression could hide in:

* ``engine_simulate`` — the raw one-port engine (1000-task bag, 5 workers);
* ``request_canonicalize`` — request validation + canonical hashing, the
  per-request overhead every service call pays;
* ``service_unique_stream`` — the dispatcher on an all-miss stream
  (every request simulates);
* ``service_cached_stream`` — the same stream against a warm result cache
  (the steady-state serving hot path).

Run with::

    PYTHONPATH=src python tools/run_benchmarks.py --output BENCH_service.json
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.engine import simulate  # noqa: E402  (path bootstrap above)
from repro.core.platform import Platform  # noqa: E402
from repro.schedulers.base import create_scheduler  # noqa: E402
from repro.service.cache import LRUResultCache  # noqa: E402
from repro.service.dispatcher import ScheduleService  # noqa: E402
from repro.service.schema import canonicalize_request  # noqa: E402
from repro.service.server import serve_lines  # noqa: E402
from repro.service.streams import synthetic_request_lines  # noqa: E402
from repro.workloads.release import all_at_zero  # noqa: E402


def _time(fn: Callable[[], Any], runs: int) -> float:
    """Mean wall-clock seconds of ``fn`` over ``runs`` calls (1 warm-up)."""
    fn()  # warm-up: imports, pools, caches
    total = 0.0
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        total += time.perf_counter() - start
    return total / runs


def bench_engine_simulate(runs: int) -> Dict[str, Any]:
    """Raw engine cost: 1000-task bag on a 5-worker heterogeneous platform."""
    platform = Platform.from_times(
        [0.05, 0.06, 0.07, 0.08, 0.09], [0.5, 0.75, 1.0, 1.25, 1.5]
    )
    tasks = all_at_zero(1000)
    scheduler = create_scheduler("LS")

    def run() -> None:
        simulate(scheduler, platform, tasks, expose_task_count=True)

    return {
        "mean_s": _time(run, runs),
        "runs": runs,
        "params": {"n_tasks": 1000, "n_workers": 5, "scheduler": "LS"},
    }


def bench_request_canonicalize(runs: int) -> Dict[str, Any]:
    """Validation + canonical-hash overhead for 1000 raw request payloads."""
    payloads = [json.loads(line) for line in synthetic_request_lines(1000)]

    def run() -> None:
        for payload in payloads:
            canonicalize_request(payload)

    return {
        "mean_s": _time(run, runs),
        "runs": runs,
        "params": {"n_requests": 1000},
    }


def _serve(lines: List[str], cache: LRUResultCache) -> None:
    with ScheduleService(workers=1, batch_size=16, max_queue=1024, cache=cache) as svc:
        serve_lines(iter(lines), svc, io.StringIO())


def bench_service_unique_stream(runs: int, n_requests: int) -> Dict[str, Any]:
    """Dispatcher on an all-miss stream: every request simulates."""
    lines = synthetic_request_lines(n_requests)

    def run() -> None:
        _serve(lines, LRUResultCache(max_entries=4 * n_requests))

    return {
        "mean_s": _time(run, runs),
        "runs": runs,
        "params": {"n_requests": n_requests, "cache": "cold"},
    }


def bench_service_cached_stream(runs: int, n_requests: int) -> Dict[str, Any]:
    """Dispatcher on the same stream with a warm cache: zero simulations."""
    lines = synthetic_request_lines(n_requests)
    cache = LRUResultCache(max_entries=4 * n_requests)
    _serve(lines, cache)  # warm the cache once, outside the timed region

    def run() -> None:
        _serve(lines, cache)

    return {
        "mean_s": _time(run, runs),
        "runs": runs,
        "params": {"n_requests": n_requests, "cache": "warm"},
    }


def run_suite(runs: int, n_requests: int) -> Dict[str, Dict[str, Any]]:
    """Execute every benchmark; returns the ``BENCH_service.json`` payload."""
    return {
        "engine_simulate": bench_engine_simulate(runs),
        "request_canonicalize": bench_request_canonicalize(runs),
        "service_unique_stream": bench_service_unique_stream(runs, n_requests),
        "service_cached_stream": bench_service_cached_stream(runs, n_requests),
    }


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Run the timed engine+service suite and write BENCH_service.json."
    )
    parser.add_argument(
        "--output", default="BENCH_service.json", help="where to write the results"
    )
    parser.add_argument(
        "--runs", type=int, default=3, help="timed repetitions per benchmark"
    )
    parser.add_argument(
        "--requests", type=int, default=64, help="stream length of the service benchmarks"
    )
    args = parser.parse_args(argv)
    if args.runs < 1 or args.requests < 1:
        parser.error("--runs and --requests must be >= 1")

    results = run_suite(args.runs, args.requests)
    Path(args.output).write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    width = max(len(name) for name in results)
    for name, entry in sorted(results.items()):
        print(f"{name:<{width}}  {entry['mean_s'] * 1e3:9.2f} ms  (x{entry['runs']})")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
