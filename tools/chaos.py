#!/usr/bin/env python
"""Chaos harness: drive real shard servers through a seeded fault schedule.

End-to-end verification of the self-healing stack.  The harness boots a
real ``repro serve --listen ... --shards N`` supervisor tree, streams a
deterministic loadgen request file through a resilient
:class:`~repro.service.sharding.ShardedClient`, and — at seeded
request-count boundaries from a :class:`~repro.service.faults.FaultSchedule`
— fires *actual* faults at the server processes:

* ``crash``  — SIGKILL the shard's current child process (the supervisor
  must restart it on its original port with capped backoff);
* ``stall``  — SIGSTOP the child for the event's duration, then SIGCONT
  (the shard is alive but silent: the client's request timeout must fire);
* ``drop``   — abort the client's TCP connection to the shard mid-stream
  (the retry path must resubmit the in-flight requests).

The run then asserts the self-healing invariants the test suite and CI
rely on:

1. **zero lost requests** — every submitted request resolves to a
   terminal response: ``ok``, or a typed degradation
   (``shard-unavailable`` / ``shard-timeout``), never a drop or hang;
2. **byte-identity** — every ``ok`` response (server-served *or*
   breaker-degraded local execution) is byte-identical to the serial
   ``repro serve`` baseline for the same request, by the determinism
   contract;
3. **recovery** — every SIGKILLed shard is restarted and serving again
   by end of run, its stats payload reporting ``restarts >= 1``;
4. **no hot-loop** — every restart delay announced by the supervisor
   respects the capped-backoff policy's lower bound.

Everything is derived from ``--seed`` (request stream, fault schedule,
supervisor jitter), so a failing run is re-driven unchanged.  With
``--strict`` (crash-only schedules) the harness additionally requires
every response to be ``ok`` — the CI smoke configuration.

Run with::

    PYTHONPATH=src python tools/chaos.py --shards 3 --requests 500 \\
        --specs crash:1@120 stall:2@240:1.0 --report chaos_report.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from loadgen import generate_lines  # noqa: E402  (tools/ path bootstrap)

from repro._hashing import canonical_json  # noqa: E402
from repro.service.cache import LRUResultCache  # noqa: E402
from repro.service.dispatcher import ScheduleService  # noqa: E402
from repro.service.faults import FaultSchedule  # noqa: E402
from repro.service.server import serve_lines  # noqa: E402
from repro.service.sharding import ShardedClient  # noqa: E402

#: Error types that count as *typed degradation* (terminal, never lost).
DEGRADED_TYPES = {"shard-unavailable", "shard-timeout"}

#: Supervisor spawn announcements: ``shard I/N: host:port pid=P restarts=K``.
_SPAWN_RE = re.compile(
    r"shard (\d+)/\d+: \S+ pid=(\d+) restarts=(\d+)"
)
#: Supervisor backoff announcements: ``... restart K in D s (crash C/M)``.
_RESTART_RE = re.compile(r"restart \d+ in ([0-9.]+)s")


class SupervisorTree:
    """One ``repro serve --shards N`` process tree plus its stderr watcher.

    The watcher thread parses the supervisor's spawn announcements to
    maintain a live ``shard index -> current pid`` map (SIGKILL must aim
    at the *current* incarnation, which changes across restarts) and
    collects the announced restart delays for the backoff audit.
    """

    def __init__(
        self,
        args: argparse.Namespace,
        base_port: int,
        extra_flags: Optional[List[str]] = None,
    ) -> None:
        self.n_shards = args.shards
        self.base_port = base_port
        self.pids: Dict[int, int] = {}
        #: Every shard pid ever announced — shutdown must SIGCONT/reap all
        #: incarnations, not just the current ones (a replaced pid can
        #: still be a stopped zombie if a stall raced a restart).
        self.all_pids: "set[int]" = set()
        self.restart_delays: List[float] = []
        self.stderr_lines: List[str] = []
        self._lock = threading.Lock()
        command = [
            sys.executable, "-m", "repro", "serve",
            "--listen", f"127.0.0.1:{base_port}",
            "--shards", str(args.shards),
            "--workers", "1",
            "--restart-base-delay", str(args.restart_base_delay),
            "--restart-limit", str(args.restart_limit),
            "--quiet",
        ] + list(extra_flags or [])
        env = dict(os.environ)
        env.setdefault("PYTHONPATH", str(Path(__file__).resolve().parent.parent / "src"))
        self.process = subprocess.Popen(
            command, env=env, stderr=subprocess.PIPE, text=True
        )
        self._watcher = threading.Thread(target=self._watch_stderr, daemon=True)
        self._watcher.start()

    def _watch_stderr(self) -> None:
        """Thread body: mirror and parse the supervisor's stderr stream."""
        assert self.process.stderr is not None
        for line in self.process.stderr:
            with self._lock:
                self.stderr_lines.append(line.rstrip("\n"))
                spawn = _SPAWN_RE.search(line)
                if spawn:
                    pid = int(spawn.group(2))
                    self.pids[int(spawn.group(1)) - 1] = pid
                    self.all_pids.add(pid)
                delay = _RESTART_RE.search(line)
                if delay:
                    self.restart_delays.append(float(delay.group(1)))

    def pid_of(self, shard: int) -> Optional[int]:
        """The shard's current child pid, if a spawn has been announced."""
        with self._lock:
            return self.pids.get(shard)

    def signal_shard(self, shard: int, signum: int) -> bool:
        """Send ``signum`` to the shard's current child; returns success."""
        pid = self.pid_of(shard)
        if pid is None:
            return False
        try:
            os.kill(pid, signum)
            return True
        except ProcessLookupError:
            return False

    def wait_ready(self, timeout: float = 20.0) -> None:
        """Block until every shard port accepts connections."""
        deadline = time.monotonic() + timeout
        for index in range(self.n_shards):
            while True:
                try:
                    socket.create_connection(
                        ("127.0.0.1", self.base_port + index), timeout=0.2
                    ).close()
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise RuntimeError(
                            f"shard {index} never came up on port "
                            f"{self.base_port + index}"
                        )
                    time.sleep(0.05)

    def _known_pids(self) -> List[int]:
        """Every shard pid ever announced, snapshotted under the lock."""
        with self._lock:
            return sorted(self.all_pids)

    @staticmethod
    def _signal_pid(pid: int, signum: int) -> bool:
        """Best-effort ``kill``; False when the pid is gone/foreign."""
        try:
            os.kill(pid, signum)
            return True
        except OSError:
            return False

    def shutdown(self) -> None:
        """SIGCONT every shard, SIGTERM the supervisor, reap the whole tree.

        Idempotent, and safe to call on *any* exit path (normal drain,
        drain timeout, KeyboardInterrupt): a SIGSTOPped shard ignores the
        supervisor's forwarded SIGTERM, so every child we ever saw is
        resumed first, and any shard still alive after the supervisor is
        gone — e.g. orphaned by a SIGKILLed supervisor — is reaped by pid
        so an interrupted run can never leak stopped processes.
        """
        for pid in self._known_pids():
            self._signal_pid(pid, signal.SIGCONT)
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        if self._watcher.is_alive():
            self._watcher.join(timeout=2.0)
        # The shards are grandchildren (the supervisor's children), so
        # there is no waitpid to collect here — SIGKILL after SIGCONT is
        # terminal, and init adopts+reaps the orphans.
        leaked = []
        for pid in self._known_pids():
            if self._signal_pid(pid, 0):
                self._signal_pid(pid, signal.SIGCONT)
                if self._signal_pid(pid, signal.SIGKILL):
                    leaked.append(pid)
        if leaked:
            print(
                f"chaos: reaped {len(leaked)} leftover shard process(es) "
                f"{leaked}",
                file=sys.stderr,
            )


def _free_base_port(n_shards: int) -> int:
    """A base port with ``n_shards`` consecutive free ports above it."""
    for _ in range(64):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        base = probe.getsockname()[1]
        probe.close()
        if base + n_shards >= 65535:
            continue
        try:
            for offset in range(n_shards):
                check = socket.socket()
                check.bind(("127.0.0.1", base + offset))
                check.close()
            return base
        except OSError:
            continue
    raise RuntimeError("could not find a free consecutive port range")


def summarize_telemetry(
    payloads: List[Dict[str, Any]],
) -> "tuple[Dict[str, Any], List[str]]":
    """Per-shard server-side telemetry from ``{"type": "metrics"}`` payloads.

    Returns ``(summary, problems)``: one row per answering shard with the
    server-side latency quantiles, batch-assembly wait, cache hit rate,
    shed/slow counts and restart gauge the audits assert on, plus one
    problem string per shard whose metrics endpoint did not answer.
    """
    summary: Dict[str, Any] = {}
    problems: List[str] = []
    for index, payload in enumerate(payloads):
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            problems.append(f"shard {index}: metrics endpoint unavailable")
            continue
        counters = metrics["counters"]
        histograms = metrics["histograms"]
        hits = counters["cache.hits"]
        misses = counters["cache.misses"]
        lookups = hits + misses
        summary[str(index)] = {
            "responded": counters["service.responded"],
            "p50_ms": histograms["service.request_ms"]["p50"],
            "p99_ms": histograms["service.request_ms"]["p99"],
            "batch_wait_p95_ms": histograms["service.batch_assembly_ms"]["p95"],
            "cache_hit_rate": round(hits / lookups, 4) if lookups else None,
            "shed": (
                counters["service.shed_queue_full"] + counters["service.shed_cost"]
            ),
            "slow": counters["service.slow_requests"],
            "restarts": metrics["gauges"]["server.restarts"],
        }
    return summary, problems


def format_telemetry_table(summary: Dict[str, Any]) -> List[str]:
    """Render a :func:`summarize_telemetry` summary as aligned table lines."""
    header = (
        f"{'shard':>5} {'responded':>9} {'p50ms':>8} {'p99ms':>8} "
        f"{'bwait95':>8} {'hit%':>6} {'shed':>6} {'slow':>6} {'restarts':>8}"
    )
    lines = [header, "-" * len(header)]
    for shard, row in sorted(summary.items(), key=lambda item: int(item[0])):
        hit_rate = row["cache_hit_rate"]
        hit_text = f"{100.0 * hit_rate:5.1f}" if hit_rate is not None else "    -"
        lines.append(
            f"{shard:>5} {row['responded']:>9} {row['p50_ms']:>8.2f} "
            f"{row['p99_ms']:>8.2f} {row['batch_wait_p95_ms']:>8.2f} "
            f"{hit_text:>6} {row['shed']:>6} {row['slow']:>6} "
            f"{row['restarts']:>8.0f}"
        )
    return lines


def serial_baseline(lines: List[str]) -> Dict[str, str]:
    """The byte-identity oracle: every request served serially, in-process.

    Returns ``request id -> canonical response line``.  Uses the same
    dispatcher pipeline as the real server, so any divergence observed
    later is a resilience bug, not a config mismatch.
    """

    class _Sink:
        def __init__(self) -> None:
            self.lines: List[str] = []

        def write(self, text: str) -> None:
            if text.strip():
                self.lines.append(text.rstrip("\n"))

        def flush(self) -> None:
            """File-object protocol; nothing buffered."""

    sink = _Sink()
    with ScheduleService(
        workers=1, batch_size=16, max_queue=256, cache=LRUResultCache(max_entries=1024)
    ) as service:
        serve_lines(lines, service, sink)
    baseline = {}
    for line, response_text in zip(lines, sink.lines):
        baseline[json.loads(line)["id"]] = response_text
    return baseline


async def drive(
    args: argparse.Namespace,
    tree: SupervisorTree,
    lines: List[str],
    schedule: FaultSchedule,
) -> Dict[str, Any]:
    """Stream the request file, firing due faults before each submission."""
    fired: List[Dict[str, Any]] = []
    killed_shards: "set[int]" = set()
    stalled_shards: "set[int]" = set()
    loop = asyncio.get_running_loop()

    client = ShardedClient.from_base(
        "127.0.0.1",
        tree.base_port,
        args.shards,
        max_inflight=args.max_inflight,
        request_timeout=args.timeout,
        max_retries=args.retries,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )
    await client.connect()

    def fire(event) -> None:
        record = {"spec": event.to_spec(), "ok": True}
        if event.kind == "crash":
            record["ok"] = tree.signal_shard(event.shard, signal.SIGKILL)
            killed_shards.add(event.shard)
        elif event.kind == "stall":
            if tree.signal_shard(event.shard, signal.SIGSTOP):
                stalled_shards.add(event.shard)
                loop.call_later(
                    event.duration,
                    lambda shard=event.shard: tree.signal_shard(
                        shard, signal.SIGCONT
                    ),
                )
            else:
                record["ok"] = False
        elif event.kind == "drop":
            shard = client._shards[event.shard]  # noqa: SLF001 - chaos harness
            writer = shard.writer
            if writer is not None and writer.transport is not None:
                writer.transport.abort()
            else:
                record["ok"] = False
        fired.append(record)

    futures = []
    try:
        for submitted, line in enumerate(lines):
            for event in schedule.due(submitted):
                fire(event)
            futures.append(await client.submit(line))
        responses = await asyncio.wait_for(
            asyncio.gather(*futures), timeout=args.drain_timeout
        )

        # Recovery check: every killed shard must be serving again.  The
        # stats probe doubles as the breaker's half-open probe, so poll
        # until the payload is a real stats response with restarts >= 1.
        recovery: Dict[int, Dict[str, Any]] = {}
        deadline = time.monotonic() + args.recovery_timeout
        pending_shards = set(killed_shards)
        while pending_shards and time.monotonic() < deadline:
            payloads = await client.stats()
            for shard in sorted(pending_shards):
                payload = payloads[shard]
                stats = payload.get("stats", {})
                if payload.get("status") == "ok" and (
                    stats.get("shard", {}).get("restarts", 0) >= 1
                ):
                    recovery[shard] = {
                        "restarts": stats["shard"]["restarts"],
                        "uptime_s": stats["uptime_s"],
                    }
                    pending_shards.discard(shard)
            if pending_shards:
                await asyncio.sleep(0.2)

        # Observability audit inputs.  Settle the breakers first (a
        # drop/stall-only schedule never enters the recovery loop, whose
        # stats probes double as half-open probes), then scrape every
        # shard's metrics endpoint and fire the sampled trace requests.
        # Fresh seeds + a heavy task count keep every sample an uncached
        # simulation whose server-side spans dominate the round trip.
        settle_deadline = time.monotonic() + 5.0
        while time.monotonic() < settle_deadline:
            if all(
                shard.breaker.state == "closed"
                for shard in client._shards  # noqa: SLF001 - chaos harness
            ):
                break
            await client.stats()
            await asyncio.sleep(0.1)
        telemetry = await client.metrics()
        trace_samples: List[Dict[str, Any]] = []
        for sample in range(args.trace_samples):
            # Coverage compares server-side span time against the client's
            # observed round trip; a loaded machine can delay the client
            # event loop by milliseconds, so each sample gets a few
            # attempts and keeps its best-covered one.  Every attempt uses
            # a *fresh* seed — a repeated seed would hit the result cache
            # and collapse the trace to the (tiny) hit-path spans.
            best: Optional[Dict[str, Any]] = None
            for attempt in range(3):
                payload = {
                    "platform": {"comm": [0.2, 0.5, 1.0], "comp": [1.0, 2.0, 4.0]},
                    "tasks": {
                        "process": "all-at-zero",
                        "n": args.trace_sample_tasks,
                    },
                    "scheduler": "LS",
                    "seed": 9_000_000 + 10 * sample + attempt,
                    "id": f"trace-sample-{sample:03d}",
                    "trace": True,
                }
                t0 = time.perf_counter()
                response_text = await (await client.submit(canonical_json(payload)))
                client_ms = (time.perf_counter() - t0) * 1000.0
                response = json.loads(response_text)
                trace = response.get("trace")
                record = {
                    "id": payload["id"],
                    "status": response.get("status"),
                    "client_ms": round(client_ms, 3),
                    "trace": trace,
                    "attempts": attempt + 1,
                }
                coverage = (
                    trace["total_ms"] / client_ms
                    if isinstance(trace, dict) and client_ms > 0
                    else 0.0
                )
                if best is None or coverage > best["_coverage"]:
                    best = {**record, "_coverage": coverage}
                if response.get("status") == "ok" and coverage >= args.min_trace_coverage:
                    break
            best.pop("_coverage")
            trace_samples.append(best)
    finally:
        # A SIGSTOPed child ignores SIGTERM until resumed — if the stream
        # drained before a stall's resume timer fired, resume it here so
        # shutdown can never leak a stopped process (extra SIGCONT to a
        # running process is a no-op).
        for shard in stalled_shards:
            tree.signal_shard(shard, signal.SIGCONT)
        await client.close()

    return {
        "responses": list(responses),
        "fired": fired,
        "killed_shards": sorted(killed_shards),
        "unrecovered_shards": sorted(pending_shards),
        "recovery": {str(k): v for k, v in sorted(recovery.items())},
        "telemetry": telemetry,
        "trace_samples": trace_samples,
        "client": client.client_stats(),
    }


def audit(
    args: argparse.Namespace,
    lines: List[str],
    baseline: Dict[str, str],
    outcome: Dict[str, Any],
    tree: SupervisorTree,
) -> Dict[str, Any]:
    """Check the four self-healing invariants; returns the report dict."""
    failures: List[str] = []
    responses = outcome["responses"]
    ok_count = degraded_count = 0
    mismatches: List[str] = []

    if len(responses) != len(lines):
        failures.append(
            f"lost requests: {len(lines) - len(responses)} of {len(lines)} "
            "never resolved"
        )
    for line, response_text in zip(lines, responses):
        request_id = json.loads(line)["id"]
        response = json.loads(response_text)
        status = response.get("status")
        if status == "ok":
            ok_count += 1
            if response_text != baseline[request_id]:
                mismatches.append(request_id)
        elif (
            status == "error"
            and response.get("error", {}).get("type") in DEGRADED_TYPES
        ):
            degraded_count += 1
        else:
            failures.append(
                f"{request_id}: non-terminal/untyped response {response_text[:120]}"
            )
    if mismatches:
        failures.append(
            f"{len(mismatches)} ok response(s) diverge from the serial "
            f"baseline (first: {mismatches[0]})"
        )
    if args.strict and degraded_count:
        failures.append(
            f"--strict: {degraded_count} typed-degradation response(s), "
            "expected every response ok"
        )
    if outcome["unrecovered_shards"]:
        failures.append(
            f"killed shard(s) {outcome['unrecovered_shards']} not serving "
            "again by end of run"
        )

    # Observability audit: every shard's metrics endpoint must answer with
    # the server-side telemetry the report surfaces, and every sampled
    # trace must carry spans that tile (sum to) the server-side total and
    # cover at least --min-trace-coverage of the client-observed latency.
    telemetry, telemetry_problems = summarize_telemetry(outcome["telemetry"])
    failures.extend(telemetry_problems)
    trace_audit: List[Dict[str, Any]] = []
    for sample in outcome["trace_samples"]:
        trace = sample["trace"]
        if sample["status"] != "ok" or not isinstance(trace, dict):
            failures.append(
                f"{sample['id']}: no trace attached "
                f"(status {sample['status']})"
            )
            continue
        span_sum = sum(span["ms"] for span in trace["spans"])
        if abs(span_sum - trace["total_ms"]) > 1e-6:
            failures.append(
                f"{sample['id']}: spans sum to {span_sum:.6f}ms but "
                f"total_ms is {trace['total_ms']:.6f}ms (overlap/gap)"
            )
        coverage = (
            trace["total_ms"] / sample["client_ms"] if sample["client_ms"] else 0.0
        )
        trace_audit.append(
            {
                "id": sample["id"],
                "client_ms": sample["client_ms"],
                "total_ms": round(trace["total_ms"], 3),
                "spans": [span["name"] for span in trace["spans"]],
                "coverage": round(coverage, 4),
            }
        )
        if coverage < args.min_trace_coverage:
            failures.append(
                f"{sample['id']}: trace covers {coverage:.1%} of the "
                f"client-observed latency (< {args.min_trace_coverage:.0%})"
            )

    # No-hot-loop audit: every announced restart delay must respect the
    # policy's jittered lower bound (the first attempt's is the smallest).
    min_delay = args.restart_base_delay * 0.9
    too_fast = [d for d in tree.restart_delays if d < min_delay]
    if too_fast:
        failures.append(
            f"restart delay(s) {too_fast} below the backoff floor "
            f"{min_delay:.3f}s (hot-loop respawn)"
        )
    increasing = all(
        later >= earlier * 0.9
        for earlier, later in zip(tree.restart_delays, tree.restart_delays[1:])
    )

    return {
        "requests": len(lines),
        "responses": len(responses),
        "ok": ok_count,
        "degraded": degraded_count,
        "lost": len(lines) - len(responses),
        "byte_mismatches": len(mismatches),
        "fired": outcome["fired"],
        "killed_shards": outcome["killed_shards"],
        "recovery": outcome["recovery"],
        "restart_delays": tree.restart_delays,
        "restart_delays_monotone": increasing,
        "telemetry": telemetry,
        "trace_samples": trace_audit,
        "client": outcome["client"],
        "failures": failures,
    }


def main(argv=None) -> int:
    """CLI entry point; exit 0 iff every invariant held."""
    parser = argparse.ArgumentParser(
        description=(
            "Boot a sharded repro server, stream a deterministic load "
            "through a resilient client while firing a seeded fault "
            "schedule, and assert zero lost requests."
        )
    )
    parser.add_argument("--shards", type=int, default=3, help="shard count")
    parser.add_argument("--requests", type=int, default=500, help="stream length")
    parser.add_argument("--seed", type=int, default=2006, help="run seed (stream + schedule)")
    parser.add_argument(
        "--specs",
        nargs="*",
        default=None,
        metavar="KIND:SHARD@REQ[:DUR]",
        help=(
            "explicit fault events (e.g. crash:1@120 stall:2@240:1.0); "
            "default: a correlated-burst schedule sampled from --seed"
        ),
    )
    parser.add_argument(
        "--bursts", type=int, default=2, help="sampled schedule: burst count"
    )
    parser.add_argument(
        "--timeout", type=float, default=2.0, help="client per-request deadline (s)"
    )
    parser.add_argument(
        "--retries", type=int, default=2, help="client retry budget per request"
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=1,
        help="consecutive failures that open a shard's circuit breaker",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=0.5,
        help="seconds before an open breaker half-opens",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=32, help="client in-flight window"
    )
    parser.add_argument(
        "--restart-base-delay", type=float, default=0.25,
        help="supervisor backoff base (kept small so runs stay fast)",
    )
    parser.add_argument(
        "--restart-limit", type=int, default=5, help="supervisor crash-loop give-up"
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=120.0,
        help="hard cap on waiting for the response stream (hang -> failure)",
    )
    parser.add_argument(
        "--recovery-timeout", type=float, default=30.0,
        help="seconds to wait for killed shards to serve again",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="require every response ok (crash-only schedules: degradation "
        "is absorbed by retry + local execution)",
    )
    parser.add_argument(
        "--trace-samples", type=int, default=5,
        help="sampled trace requests fired after recovery (0 disables)",
    )
    parser.add_argument(
        "--trace-sample-tasks", type=int, default=800,
        help="tasks per sampled trace request (heavy enough that the "
        "simulate span dominates the round trip)",
    )
    parser.add_argument(
        "--min-trace-coverage", type=float, default=0.9,
        help="minimum fraction of the client-observed latency the trace's "
        "server-side spans must cover",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the JSON chaos report to FILE",
    )
    args = parser.parse_args(argv)
    if args.shards < 1 or args.requests < 1:
        parser.error("--shards and --requests must be >= 1")

    # The request stream reuses loadgen's deterministic generator.
    stream_args = argparse.Namespace(
        seed=args.seed, unique=16, workers=4, tasks=40,
        rate=10.0, period=20.0, requests=args.requests,
    )
    lines = generate_lines(stream_args)
    if args.specs:
        schedule = FaultSchedule.from_specs(args.specs)
    else:
        schedule = FaultSchedule.correlated_bursts(
            args.seed, n_shards=args.shards, n_requests=args.requests,
            n_bursts=args.bursts,
        )
    print(f"chaos: schedule {schedule.to_specs()}", file=sys.stderr)

    baseline = serial_baseline(lines)
    # --trace lets the sampled trace requests opt in to span timings.
    tree = SupervisorTree(args, _free_base_port(args.shards), extra_flags=["--trace"])
    try:
        tree.wait_ready()
        outcome = asyncio.run(drive(args, tree, lines, schedule))
    except asyncio.TimeoutError:
        print(
            f"chaos: FAILED - response stream did not drain within "
            f"{args.drain_timeout}s (lost/hung requests)",
            file=sys.stderr,
        )
        return 1
    except KeyboardInterrupt:
        # The finally below resumes + reaps the whole tree, so an
        # interrupted run leaves no stopped shards behind.
        print("chaos: interrupted - reaping the supervised tree", file=sys.stderr)
        return 130
    finally:
        tree.shutdown()

    report = audit(args, lines, baseline, outcome, tree)
    report["schedule"] = schedule.summary()
    report["seed"] = args.seed
    if args.report:
        Path(args.report).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    verdict = "PASSED" if not report["failures"] else "FAILED"
    print(
        f"chaos: {verdict} - {report['ok']}/{report['requests']} ok, "
        f"{report['degraded']} degraded, {report['lost']} lost, "
        f"{report['byte_mismatches']} byte mismatch(es), "
        f"restarts {report['recovery'] or '{}'}, "
        f"client {report['client']}",
        file=sys.stderr,
    )
    for line in format_telemetry_table(report["telemetry"]):
        print(f"chaos: {line}", file=sys.stderr)
    for sample in report["trace_samples"]:
        print(
            f"chaos: trace {sample['id']}: {sample['total_ms']:.2f}ms "
            f"server-side over {sample['client_ms']:.2f}ms observed "
            f"({sample['coverage']:.1%}; spans {'>'.join(sample['spans'])})",
            file=sys.stderr,
        )
    for failure in report["failures"]:
        print(f"chaos:   FAIL {failure}", file=sys.stderr)
    return 0 if not report["failures"] else 1


if __name__ == "__main__":
    sys.exit(main())
