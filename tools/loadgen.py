#!/usr/bin/env python
"""Load generator: replay a nonstationary request stream against the service.

Emits ``--requests`` JSONL schedule requests on stdout, ready to pipe into
``repro serve``.  Two ingredients make the stream a realistic serving
workload rather than a uniform batch:

* **arrival process** — request timestamps are drawn from the
  inhomogeneous Poisson process of
  :func:`repro.workloads.release.inhomogeneous_poisson_releases` (Lewis &
  Shedler thinning, the same construction as Hohmann's IPPP package,
  arXiv:1901.10754) with a sinusoidal "diurnal" intensity, so requests
  cluster into rush hours; the timestamp rides along as the ``arrival``
  metadata field (excluded from the cache key);
* **repetition** — configurations are drawn from a finite pool of
  ``--unique`` distinct requests, so a long enough stream repeats itself
  and exercises the service's result cache and duplicate coalescing, the
  way real traffic repeats popular queries.

The stream is a pure function of ``--seed`` and the shape flags, so two
invocations with the same flags are byte-identical — which is what lets CI
compare ``repro serve --workers 4`` against ``--workers 1`` with a literal
``cmp``.

Run with::

    PYTHONPATH=src python tools/loadgen.py --requests 500 --workers 4 \\
        | PYTHONPATH=src python -m repro serve --workers 4
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402  (path bootstrap above)

from repro._hashing import canonical_json  # noqa: E402
from repro.workloads.release import inhomogeneous_poisson_releases  # noqa: E402

#: Schedulers the generator samples from — the paper's heuristics that are
#: cheap enough for a high-volume stream.
SCHEDULERS = ("LS", "SRPT", "RR", "RRC", "RRP", "SLJF", "SLJFWC")


def build_pool(
    rng: np.random.Generator, unique: int, max_workers: int, max_tasks: int
) -> List[Dict[str, Any]]:
    """Draw the pool of distinct request configurations."""
    pool: List[Dict[str, Any]] = []
    for _ in range(unique):
        width = int(rng.integers(1, max_workers + 1))
        comm = [round(float(c), 3) for c in rng.uniform(0.05, 1.0, size=width)]
        comp = [round(float(p), 3) for p in rng.uniform(0.5, 4.0, size=width)]
        n = int(rng.integers(5, max_tasks + 1))
        process = str(rng.choice(["all-at-zero", "poisson", "uniform"]))
        tasks: Dict[str, Any] = {"process": process, "n": n}
        if process == "poisson":
            tasks["rate"] = round(float(rng.uniform(0.5, 4.0)), 3)
        elif process == "uniform":
            tasks["horizon"] = round(float(rng.uniform(1.0, 20.0)), 3)
        pool.append(
            {
                "platform": {"comm": comm, "comp": comp},
                "tasks": tasks,
                "scheduler": str(rng.choice(SCHEDULERS)),
                "seed": int(rng.integers(0, 16)),
            }
        )
    return pool


def generate(args: argparse.Namespace, out) -> int:
    """Write the request stream to ``out``; returns the number of lines."""
    rng = np.random.default_rng(args.seed)
    pool = build_pool(rng, args.unique, args.workers, args.tasks)

    # Diurnal intensity: mean rate `args.rate`, swinging +-80% over one
    # `args.period`-long "day", so arrivals bunch into rush hours.
    base = args.rate

    def intensity(t: float) -> float:
        return base * (1.0 + 0.8 * math.sin(2.0 * math.pi * t / args.period))

    arrivals = inhomogeneous_poisson_releases(
        args.requests, intensity, max_rate=1.8 * base, rng=rng
    ).releases

    for index, arrival in enumerate(arrivals):
        config = pool[int(rng.integers(0, len(pool)))]
        request = dict(config)
        request["id"] = f"req-{index:06d}"
        request["arrival"] = round(float(arrival), 6)
        out.write(canonical_json(request) + "\n")
    return args.requests


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description=(
            "Emit a deterministic JSONL schedule-request stream with "
            "inhomogeneous-Poisson arrivals, ready to pipe into 'repro serve'."
        )
    )
    parser.add_argument("--requests", type=int, default=500, help="stream length")
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help=(
            "maximum platform width (simulated workers per requested platform); "
            "NOT serve-side parallelism — that is `repro serve --workers`"
        ),
    )
    parser.add_argument(
        "--unique",
        type=int,
        default=25,
        help="distinct configurations in the pool (smaller = more cache hits)",
    )
    parser.add_argument(
        "--tasks", type=int, default=50, help="maximum tasks per request"
    )
    parser.add_argument(
        "--rate", type=float, default=10.0, help="mean arrival rate (requests/unit)"
    )
    parser.add_argument(
        "--period", type=float, default=20.0, help="length of one diurnal cycle"
    )
    parser.add_argument("--seed", type=int, default=2006, help="stream seed")
    args = parser.parse_args(argv)
    if args.requests < 1 or args.unique < 1 or args.workers < 1 or args.tasks < 5:
        parser.error("--requests/--unique/--workers must be >= 1, --tasks >= 5")
    if args.rate <= 0 or args.period <= 0:
        parser.error("--rate and --period must be > 0")
    generate(args, sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())
