#!/usr/bin/env python
"""Load generator: replay a nonstationary request stream against the service.

Emits ``--requests`` JSONL schedule requests on stdout, ready to pipe into
``repro serve`` — or, with ``--connect HOST:PORT``, drives the stream over
**sustained concurrent TCP connections** against a persistent (optionally
sharded) server and records steady-state RPS and p50/p99 latency.  Adding
``--duration SECONDS`` switches the connected mode from "stream the file
once" to **wall-clock load**: each client cycles the generated file until
the deadline passes (soak runs), then drains its in-flight window.  Two
ingredients make the stream a realistic serving workload rather than a
uniform batch:

* **arrival process** — request timestamps are drawn from the
  inhomogeneous Poisson process of
  :func:`repro.workloads.release.inhomogeneous_poisson_releases` (Lewis &
  Shedler thinning, the same construction as Hohmann's IPPP package,
  arXiv:1901.10754) with a sinusoidal "diurnal" intensity, so requests
  cluster into rush hours; the timestamp rides along as the ``arrival``
  metadata field (excluded from the cache key);
* **repetition** — configurations are drawn from a finite pool of
  ``--unique`` distinct requests, so a long enough stream repeats itself
  and exercises the service's result cache and duplicate coalescing, the
  way real traffic repeats popular queries.

The stream is a pure function of ``--seed`` and the shape flags, so two
invocations with the same flags are byte-identical — which is what lets CI
compare ``repro serve --workers 4`` against ``--workers 1`` with a literal
``cmp``.

Run with::

    PYTHONPATH=src python tools/loadgen.py --requests 500 --workers 4 \\
        | PYTHONPATH=src python -m repro serve --workers 4

or against a persistent 3-shard server (each of the ``--connections``
clients streams the *same* generated request file, so every client's
response stream must be byte-identical to the serial baseline; client 0's
stream goes to stdout for exactly that ``cmp``)::

    PYTHONPATH=src python -m repro serve --listen 127.0.0.1:7000 --shards 3 &
    PYTHONPATH=src python tools/loadgen.py --requests 500 \\
        --connect 127.0.0.1:7000 --shards 3 --connections 8 \\
        --stats-json loadgen_stats.json > client0.jsonl
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import sys
import time
from collections import Counter, deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402  (path bootstrap above)

from repro._hashing import canonical_json  # noqa: E402
from repro.obs import StreamingHistogram  # noqa: E402
from repro.service.async_server import parse_address  # noqa: E402
from repro.service.sharding import ShardedClient  # noqa: E402
from repro.workloads.release import inhomogeneous_poisson_releases  # noqa: E402

#: Schedulers the generator samples from — the paper's heuristics that are
#: cheap enough for a high-volume stream.
SCHEDULERS = ("LS", "SRPT", "RR", "RRC", "RRP", "SLJF", "SLJFWC")


def build_pool(
    rng: np.random.Generator, unique: int, max_workers: int, max_tasks: int
) -> List[Dict[str, Any]]:
    """Draw the pool of distinct request configurations."""
    pool: List[Dict[str, Any]] = []
    for _ in range(unique):
        width = int(rng.integers(1, max_workers + 1))
        comm = [round(float(c), 3) for c in rng.uniform(0.05, 1.0, size=width)]
        comp = [round(float(p), 3) for p in rng.uniform(0.5, 4.0, size=width)]
        n = int(rng.integers(5, max_tasks + 1))
        process = str(rng.choice(["all-at-zero", "poisson", "uniform"]))
        tasks: Dict[str, Any] = {"process": process, "n": n}
        if process == "poisson":
            tasks["rate"] = round(float(rng.uniform(0.5, 4.0)), 3)
        elif process == "uniform":
            tasks["horizon"] = round(float(rng.uniform(1.0, 20.0)), 3)
        pool.append(
            {
                "platform": {"comm": comm, "comp": comp},
                "tasks": tasks,
                "scheduler": str(rng.choice(SCHEDULERS)),
                "seed": int(rng.integers(0, 16)),
            }
        )
    return pool


def generate_lines(args: argparse.Namespace) -> List[str]:
    """The deterministic request stream described by the flags, as lines."""
    rng = np.random.default_rng(args.seed)
    pool = build_pool(rng, args.unique, args.workers, args.tasks)

    # Diurnal intensity: mean rate `args.rate`, swinging +-80% over one
    # `args.period`-long "day", so arrivals bunch into rush hours.
    base = args.rate

    def intensity(t: float) -> float:
        return base * (1.0 + 0.8 * math.sin(2.0 * math.pi * t / args.period))

    arrivals = inhomogeneous_poisson_releases(
        args.requests, intensity, max_rate=1.8 * base, rng=rng
    ).releases

    lines = []
    for index, arrival in enumerate(arrivals):
        config = pool[int(rng.integers(0, len(pool)))]
        request = dict(config)
        request["id"] = f"req-{index:06d}"
        request["arrival"] = round(float(arrival), 6)
        lines.append(canonical_json(request))
    return lines


def generate(args: argparse.Namespace, out) -> int:
    """Write the request stream to ``out``; returns the number of lines."""
    for line in generate_lines(args):
        out.write(line + "\n")
    return args.requests


async def _drive_one_client(
    addresses: List[Tuple[str, int]],
    lines: List[str],
    max_inflight: int,
    request_timeout: Optional[float] = None,
    duration: Optional[float] = None,
) -> Tuple[List[str], List[float]]:
    """Stream the request file over one connection set; returns (responses, latencies).

    Latency is measured per request, submit-to-response, with at most
    ``max_inflight`` requests outstanding — a sustained closed-loop client,
    not a single giant burst.  Without ``duration`` the client streams the
    file exactly once; with it, the client **cycles** the file until the
    wall-clock deadline passes (open-loop load over a fixed time window —
    the soak-run mode), then drains its in-flight window, so every
    submitted request still resolves.
    """
    responses: List[str] = []
    latencies: List[float] = []
    window: "deque[Tuple[asyncio.Future, float]]" = deque()

    async def settle() -> None:
        future, t0 = window.popleft()
        responses.append(await future)
        latencies.append(time.perf_counter() - t0)

    async with ShardedClient(
        addresses, max_inflight=max_inflight, request_timeout=request_timeout
    ) as client:
        if duration is None:
            for line in lines:
                while len(window) >= max_inflight:
                    await settle()
                t0 = time.perf_counter()
                window.append((await client.submit(line), t0))
        else:
            deadline = time.perf_counter() + duration
            index = 0
            while time.perf_counter() < deadline:
                while len(window) >= max_inflight:
                    await settle()
                line = lines[index % len(lines)]
                index += 1
                t0 = time.perf_counter()
                window.append((await client.submit(line), t0))
        while window:
            await settle()
    return responses, latencies


async def _drive(
    args: argparse.Namespace, lines: List[str]
) -> Tuple[List[List[str]], List[float], float]:
    """Run ``--connections`` concurrent clients; returns streams, latencies, wall."""
    host, port = parse_address(args.connect)
    addresses = [(host, port + index) for index in range(args.shards)]
    started = time.perf_counter()
    results = await asyncio.gather(
        *(
            _drive_one_client(
                addresses, lines, args.max_inflight, args.timeout, args.duration
            )
            for _ in range(args.connections)
        )
    )
    elapsed = time.perf_counter() - started
    streams = [responses for responses, _ in results]
    latencies = [latency for _, client_latencies in results for latency in client_latencies]
    return streams, latencies, elapsed


def run_connected(args: argparse.Namespace, out, err) -> int:
    """Drive the generated stream against a persistent server; returns exit code.

    Writes client 0's response stream to ``out`` (byte-comparable against
    the serial ``repro serve`` baseline), a human-readable summary to
    ``err``, and — with ``--stats-json`` — a machine-readable record of
    steady-state RPS, p50/p99 latency, drops and response statuses.
    """
    lines = generate_lines(args)
    streams, latencies, elapsed = asyncio.run(_drive(args, lines))

    received = sum(len(stream) for stream in streams)
    if args.duration is None:
        expected = len(lines) * args.connections
    else:
        # Duration mode is open-ended: each client cycles the file until
        # the wall-clock deadline and drains its window, so "expected" is
        # exactly what was submitted — a lost request would have raised.
        expected = received
    statuses: Counter = Counter()
    for stream in streams:
        for response_text in stream:
            try:
                statuses[json.loads(response_text).get("status", "?")] += 1
            except json.JSONDecodeError:
                statuses["unparseable"] += 1
    drops = expected - received
    # Cross-client byte-identity only holds when every client streams the
    # same finite file; duration-mode clients stop at independent
    # wall-clock deadlines, so their stream lengths legitimately differ.
    if args.duration is None:
        divergent = [
            index
            for index, stream in enumerate(streams[1:], start=1)
            if stream != streams[0]
        ]
    else:
        divergent = []

    # Quantiles via the service's own streaming histogram (repro.obs), so
    # loadgen's client-side p50/p99 and the server's service.request_ms
    # quantiles are computed by the same bucketed estimator.
    histogram = StreamingHistogram()
    for latency in latencies:
        histogram.observe(latency * 1e3)
    stats = {
        "requests": len(lines),
        "duration_s": args.duration,
        "connections": args.connections,
        "shards": args.shards,
        "expected_responses": expected,
        "responses": received,
        "drops": drops,
        "divergent_clients": divergent,
        "statuses": dict(statuses),
        "elapsed_s": round(elapsed, 6),
        "rps": round(received / elapsed, 3) if elapsed > 0 else 0.0,
        "p50_ms": round(histogram.quantile(0.50), 3),
        "p99_ms": round(histogram.quantile(0.99), 3),
        "latency_histogram": histogram.snapshot(),
    }

    for response_text in streams[0]:
        out.write(response_text + "\n")
    print(
        f"loadgen: {received}/{expected} response(s) over "
        f"{args.connections} connection(s) x {args.shards} shard(s) in "
        f"{elapsed:.3f}s -> {stats['rps']:.1f} rps, "
        f"p50 {stats['p50_ms']:.2f} ms, p99 {stats['p99_ms']:.2f} ms, "
        f"{drops} drop(s)",
        file=err,
    )
    if args.stats_json:
        Path(args.stats_json).write_text(
            json.dumps(stats, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    if drops or divergent:
        if divergent:
            print(
                f"loadgen: ERROR - client stream(s) {divergent} diverge from "
                "client 0 (per-client byte-identity violated)",
                file=err,
            )
        return 1
    return 0


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description=(
            "Emit a deterministic JSONL schedule-request stream with "
            "inhomogeneous-Poisson arrivals, ready to pipe into 'repro serve'."
        )
    )
    parser.add_argument("--requests", type=int, default=500, help="stream length")
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help=(
            "maximum platform width (simulated workers per requested platform); "
            "NOT serve-side parallelism — that is `repro serve --workers`"
        ),
    )
    parser.add_argument(
        "--unique",
        type=int,
        default=25,
        help="distinct configurations in the pool (smaller = more cache hits)",
    )
    parser.add_argument(
        "--tasks", type=int, default=50, help="maximum tasks per request"
    )
    parser.add_argument(
        "--rate", type=float, default=10.0, help="mean arrival rate (requests/unit)"
    )
    parser.add_argument(
        "--period", type=float, default=20.0, help="length of one diurnal cycle"
    )
    parser.add_argument("--seed", type=int, default=2006, help="stream seed")
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help=(
            "drive the stream against a persistent server at HOST:PORT "
            "instead of emitting it on stdout"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard count of the target server (consecutive ports from PORT)",
    )
    parser.add_argument(
        "--connections",
        type=int,
        default=1,
        help="concurrent client connections, each streaming the full file",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        help="per-client cap on outstanding requests (closed-loop window)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "with --connect: per-request deadline; a stalled shard resolves "
            "to a typed shard-timeout response instead of hanging the client"
        ),
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "with --connect: cycle the generated request file for this many "
            "wall-clock seconds instead of streaming it exactly once "
            "(open-loop soak load; --requests sets the cycled pool size)"
        ),
    )
    parser.add_argument(
        "--stats-json",
        metavar="FILE",
        default=None,
        help="with --connect: write RPS/latency/drop statistics to FILE",
    )
    args = parser.parse_args(argv)
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be > 0")
    if args.duration is not None:
        if args.duration <= 0:
            parser.error("--duration must be > 0")
        if args.connect is None:
            parser.error("--duration requires --connect")
    if args.requests < 1 or args.unique < 1 or args.workers < 1 or args.tasks < 5:
        parser.error("--requests/--unique/--workers must be >= 1, --tasks >= 5")
    if args.rate <= 0 or args.period <= 0:
        parser.error("--rate and --period must be > 0")
    if args.shards < 1 or args.connections < 1 or args.max_inflight < 1:
        parser.error("--shards/--connections/--max-inflight must be >= 1")
    if args.connect is not None:
        try:
            return run_connected(args, sys.stdout, sys.stderr)
        except (OSError, asyncio.TimeoutError) as exc:
            print(f"loadgen: connection failed: {exc}", file=sys.stderr)
            return 2
    generate(args, sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())
