#!/usr/bin/env python
"""Differential-verification harness: reference engine vs. array kernel.

Every case — one (scheduler, platform, task bag, timeline) simulation — runs
through both kernel backends (:mod:`repro.core.kernel`); the harness asserts

* **trace equality**: the canonical trace rows (``task_id, worker_id,
  release, send_start, send_end, compute_start, compute_end`` in send order)
  are equal with *exact* float comparison, and
* **metric identity**: the scalar metrics payloads are bit-identical.

Cases come from two generators, both deterministic:

* the **grid** — every (scheduler × scenario × seed) combination on a fixed
  heterogeneous platform, the acceptance grid of the differential suite;
* the **randomized corpus** — seeded random platforms, bag sizes, scenario
  draws and scheduler mixes (including non-vectorized schedulers, which
  exercise the array backend's per-job fallback), so coverage grows past
  the hand-written grid by just raising ``--random``.

The test-suite (``tests/differential/``) imports these generators; this CLI
wraps them for one-shot verification runs::

    PYTHONPATH=src python tools/diff_backends.py --seeds 5 --random 50

Exit status is non-zero when any case mismatches, with a per-case diff
summary on stdout.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402  (path bootstrap above)

from repro.core.kernel import KernelJob, create_kernel, trace_rows  # noqa: E402
from repro.core.platform import Platform  # noqa: E402
from repro.core.task import TaskSet  # noqa: E402
from repro.scenarios import available_scenarios, create_scenario  # noqa: E402
from repro.schedulers.base import PAPER_HEURISTICS  # noqa: E402

__all__ = [
    "GRID_PLATFORM",
    "FALLBACK_SCHEDULERS",
    "Mismatch",
    "grid_cases",
    "random_cases",
    "compare_backends",
    "main",
]

#: The fixed 4-worker heterogeneous platform of the acceptance grid.
GRID_PLATFORM = Platform.from_times([0.05, 0.09, 0.07, 0.12], [0.6, 1.1, 0.9, 1.4])

#: Deterministic non-vectorized schedulers: every one exercises the array
#: backend's per-job delegation to the reference engine.  RANDOM is excluded
#: on purpose — its decisions draw from a per-instance stream, so two
#: independent runs are not comparable case material.
FALLBACK_SCHEDULERS = ("RR-STRICT", "RRC-STRICT", "RRP-STRICT", "GREEDY-COMM", "SINGLE")


@dataclass(frozen=True)
class Mismatch:
    """One differential failure: where two backends disagreed and how."""

    index: int
    scheduler: str
    detail: str

    def __str__(self) -> str:
        return f"case {self.index} ({self.scheduler}): {self.detail}"


def grid_cases(
    schedulers: Sequence[str] = tuple(PAPER_HEURISTICS),
    scenarios: Optional[Sequence[str]] = None,
    seeds: int = 5,
    n_tasks: int = 40,
    platform: Optional[Platform] = None,
) -> List[KernelJob]:
    """The acceptance grid: every (scheduler x scenario x seed) case.

    Scenario instances (task releases and platform timeline) are derived per
    (scenario, seed) and shared by all schedulers of that combination, the
    same discipline the campaign layer uses.
    """
    platform = platform if platform is not None else GRID_PLATFORM
    names = sorted(available_scenarios()) if scenarios is None else list(scenarios)
    jobs: List[KernelJob] = []
    for scenario_name in names:
        scenario = create_scenario(scenario_name)
        for seed in range(seeds):
            rng = np.random.default_rng(1_000 + seed)
            instance = scenario.build(platform, n_tasks, rng)
            for scheduler in schedulers:
                jobs.append(
                    KernelJob(
                        scheduler,
                        platform,
                        instance.tasks,
                        timeline=instance.timeline,
                    )
                )
    return jobs


def random_cases(n_cases: int, seed: int = 0) -> List[KernelJob]:
    """A seeded randomized corpus of ``n_cases`` kernel jobs.

    Each case draws its platform shape (1-6 workers), its heterogeneity,
    its bag size (1-60 tasks), a scenario, a scheduler (one in six draws a
    non-vectorized fallback scheduler) and the ``expose_task_count`` flag
    from one deterministic stream, so a corpus is reproducible from
    ``(n_cases, seed)`` alone.
    """
    rng = np.random.default_rng(987_000 + seed)
    scenario_names = sorted(available_scenarios())
    vectorized = list(PAPER_HEURISTICS)
    jobs: List[KernelJob] = []
    for _ in range(n_cases):
        n_workers = int(rng.integers(1, 7))
        comm = rng.uniform(0.02, 0.4, size=n_workers).round(4)
        comp = rng.uniform(0.3, 2.5, size=n_workers).round(4)
        platform = Platform.from_times(comm.tolist(), comp.tolist())
        n_tasks = int(rng.integers(1, 61))
        scenario = create_scenario(scenario_names[int(rng.integers(len(scenario_names)))])
        instance = scenario.build(platform, n_tasks, rng)
        if rng.integers(6) == 0:
            scheduler = FALLBACK_SCHEDULERS[int(rng.integers(len(FALLBACK_SCHEDULERS)))]
        else:
            scheduler = vectorized[int(rng.integers(len(vectorized)))]
        jobs.append(
            KernelJob(
                scheduler,
                platform,
                instance.tasks,
                timeline=instance.timeline,
                expose_task_count=bool(rng.integers(2)),
            )
        )
    return jobs


def compare_backends(
    jobs: Sequence[KernelJob],
    baseline: str = "reference",
    candidate: str = "array",
) -> List[Mismatch]:
    """Run every job through both backends; return all disagreements.

    The candidate backend receives the jobs as *one* batch (exercising the
    batched path), the baseline runs them job by job; traces are compared
    row for row with exact float equality, metrics key for key.
    """
    base = create_kernel(baseline)
    cand = create_kernel(candidate)
    candidate_results = cand.run_batch(jobs)
    mismatches: List[Mismatch] = []
    for index, job in enumerate(jobs):
        expected = base.run(job)
        actual = candidate_results[index]
        for key, value in expected.metrics.items():
            got = actual.metrics.get(key)
            if got != value:
                mismatches.append(
                    Mismatch(index, job.scheduler, f"metric {key}: {got!r} != {value!r}")
                )
        expected_trace = trace_rows(expected.schedule)
        actual_trace = actual.trace()
        if len(expected_trace) != len(actual_trace):
            mismatches.append(
                Mismatch(
                    index,
                    job.scheduler,
                    f"trace length {len(actual_trace)} != {len(expected_trace)}",
                )
            )
            continue
        for row_index, (expected_row, actual_row) in enumerate(
            zip(expected_trace, actual_trace)
        ):
            if expected_row != actual_row:
                mismatches.append(
                    Mismatch(
                        index,
                        job.scheduler,
                        f"trace row {row_index}: {actual_row} != {expected_row}",
                    )
                )
                break
    return mismatches


def _report(label: str, jobs: Sequence[KernelJob], mismatches: Iterable[Mismatch]) -> int:
    mismatches = list(mismatches)
    status = "FAIL" if mismatches else "ok"
    print(f"{label}: {len(jobs)} case(s), {len(mismatches)} mismatch(es) [{status}]")
    for mismatch in mismatches:
        print(f"  {mismatch}")
    return len(mismatches)


def main(argv=None) -> int:
    """CLI entry point: run the grid and/or randomized differential suite."""
    parser = argparse.ArgumentParser(
        description="Verify kernel backends against the reference engine."
    )
    parser.add_argument(
        "--schedulers",
        nargs="+",
        default=list(PAPER_HEURISTICS),
        metavar="NAME",
        help="schedulers of the grid (default: the seven paper heuristics)",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="NAME",
        help="scenarios of the grid (default: every registered scenario)",
    )
    parser.add_argument("--seeds", type=int, default=5, help="seeds per grid cell")
    parser.add_argument("--tasks", type=int, default=40, help="tasks per grid case")
    parser.add_argument(
        "--random", type=int, default=0, metavar="N",
        help="additionally run N randomized cases (seeded, reproducible)",
    )
    parser.add_argument(
        "--random-seed", type=int, default=0, help="seed of the randomized corpus"
    )
    parser.add_argument(
        "--backend", default="array", help="candidate backend to verify"
    )
    parser.add_argument(
        "--skip-grid", action="store_true", help="run only the randomized corpus"
    )
    args = parser.parse_args(argv)

    failures = 0
    if not args.skip_grid:
        jobs = grid_cases(
            schedulers=args.schedulers,
            scenarios=args.scenarios,
            seeds=args.seeds,
            n_tasks=args.tasks,
        )
        failures += _report("grid", jobs, compare_backends(jobs, candidate=args.backend))
    if args.random > 0:
        jobs = random_cases(args.random, seed=args.random_seed)
        failures += _report(
            "random", jobs, compare_backends(jobs, candidate=args.backend)
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
