#!/usr/bin/env python
"""Soak harness: wall-clock fault + pressure run against a durable shard tree.

``tools/chaos.py`` fires single seeded fault schedules at a
request-count granularity; this harness answers the longer question the
ROADMAP asks — does the self-healing *and* the new durability layer hold
up over sustained wall-clock time under **combined** stress?  One run:

1. boots a real ``repro serve --listen --shards N --state-dir ...``
   supervisor tree, so every shard journals its cache and warm-loads it
   on restart (:mod:`repro.service.persistence`);
2. drives open-loop load for ``--duration`` seconds: a deterministic
   loadgen request pool is cycled through a resilient
   :class:`~repro.service.sharding.ShardedClient`, with the client's
   in-flight window deliberately wider than the servers' admission queue
   so load-shedding pressure (typed ``service-overloaded`` rejections)
   is part of the steady state, not an anomaly;
3. fires an **iterated-Poisson fault burst schedule**
   (:meth:`~repro.service.faults.FaultSchedule.correlated_bursts`,
   arXiv:2501.11322) keyed on elapsed wall-clock centiseconds, clamped to
   the first ~60% of the run so every killed shard has post-restart
   traffic to prove itself on (at least one SIGKILL is always included);
4. after the load window drains, audits the invariants:

   * **zero lost requests** — every submitted request resolved to a
     terminal response (``ok``, typed shed, or typed degradation);
   * **byte-identity** — every ``ok`` response equals the serial
     in-process baseline for the same request id;
   * **bounded degradation** — sheds + degraded responses stay under
     ``--max-nonok-fraction`` of the stream;
   * **recovery** — every SIGKILLed shard is serving again with
     ``restarts >= 1``;
   * **warm restart** — after recovery, the request pool is replayed
     once and the killed shards' ``warm_hits`` counters are strictly
     positive: the restarted shard served journaled results from replayed
     state instead of re-simulating (the PR's acceptance criterion).

Everything is derived from ``--seed``; the fault schedule is printed as
replayable spec strings, so a failing soak can be re-driven.

Run with::

    PYTHONPATH=src python tools/soak.py --shards 3 --duration 30 --report soak.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import tempfile
import time
from collections import Counter, deque
from pathlib import Path
from typing import Any, Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from chaos import (  # noqa: E402  (tools/ path bootstrap)
    DEGRADED_TYPES,
    SupervisorTree,
    _free_base_port,
    format_telemetry_table,
    serial_baseline,
    summarize_telemetry,
)
from loadgen import generate_lines  # noqa: E402

from repro._hashing import canonical_json  # noqa: E402
from repro.service.faults import FaultSchedule  # noqa: E402
from repro.service.sharding import ShardedClient  # noqa: E402


def build_schedule(args: argparse.Namespace) -> FaultSchedule:
    """The run's fault schedule, on a centisecond wall-clock grid.

    ``correlated_bursts`` places events on a request-count axis; the soak
    driver feeds it elapsed centiseconds instead, with the horizon set to
    the first 60% of ``--duration`` so every fault leaves enough
    post-restart runway for the warm-hit audit.  A crash is always
    appended at the 20% mark if the sampled bursts happened to be
    stall-only — the warm-restart assertion needs at least one SIGKILL.
    """
    horizon_cs = max(int(args.duration * 100 * 0.6), 10)
    sampled = FaultSchedule.correlated_bursts(
        args.seed,
        n_shards=args.shards,
        n_requests=horizon_cs,
        n_bursts=args.bursts,
    )
    specs = sampled.to_specs()
    if not any(event.kind == "crash" for event in sampled.events):
        specs.append(f"crash:0@{max(horizon_cs // 3, 1)}")
    return FaultSchedule.from_specs(specs)


async def pressure_loop(
    args: argparse.Namespace,
    tree: SupervisorTree,
    pressure_lines: List[str],
    stop: asyncio.Event,
) -> List[str]:
    """The shedding-pressure stream: continuous *uncached* simulation load.

    The cycled main stream is cache-hot, so on its own it exercises no
    admission control.  This second client keeps real work in the
    dispatch queues for the whole window by re-seeding every request each
    cycle — a fresh seed means a fresh canonical key, so every submission
    is a genuine simulation, not a cache hit — and its pool is drawn
    *heavier* than the server's ``--max-cost`` admission budget, so its
    heavy tail is deterministically shed with typed ``service-overloaded``
    rejections.  Returns the terminal response lines (audited for
    typed-termination and counted for shed pressure; byte-identity is the
    main stream's job).
    """
    responses: List[str] = []
    window: "deque[asyncio.Future]" = deque()
    async with ShardedClient.from_base(
        "127.0.0.1",
        tree.base_port,
        args.shards,
        max_inflight=args.pressure_inflight,
        request_timeout=args.timeout,
        max_retries=1,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    ) as client:
        cycle = 0
        while not stop.is_set():
            for line in pressure_lines:
                if stop.is_set():
                    break
                payload = json.loads(line)
                # A new seed every cycle keeps the key-space fresh: the
                # pressure stream can never warm itself into irrelevance.
                payload["seed"] = cycle * 997 + payload.get("seed", 0) % 997
                while len(window) >= args.pressure_inflight:
                    responses.append(await window.popleft())
                window.append(await client.submit(canonical_json(payload)))
            cycle += 1
        while window:
            responses.append(await window.popleft())
    return responses


async def drive(
    args: argparse.Namespace,
    tree: SupervisorTree,
    lines: List[str],
    pressure_lines: List[str],
    schedule: FaultSchedule,
) -> Dict[str, Any]:
    """Run the wall-clock load window, firing due faults as time passes.

    Returns the raw outcome: ``(line, response)`` pairs for every
    submitted request, the pressure stream's terminal responses, the
    fired fault records, and — after the drain — the killed shards'
    recovery/warm-hit evidence.
    """
    fired: List[Dict[str, Any]] = []
    killed_shards: "set[int]" = set()
    stalled_shards: "set[int]" = set()
    pairs: List[Tuple[str, str]] = []
    window: "deque[Tuple[str, asyncio.Future]]" = deque()
    loop = asyncio.get_running_loop()
    stop_pressure = asyncio.Event()
    pressure_task = (
        asyncio.ensure_future(
            pressure_loop(args, tree, pressure_lines, stop_pressure)
        )
        if pressure_lines
        else None
    )

    client = ShardedClient.from_base(
        "127.0.0.1",
        tree.base_port,
        args.shards,
        max_inflight=args.max_inflight,
        request_timeout=args.timeout,
        max_retries=args.retries,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )
    await client.connect()

    def fire(event) -> None:
        record = {"spec": event.to_spec(), "ok": True}
        if event.kind == "crash":
            record["ok"] = tree.signal_shard(event.shard, signal.SIGKILL)
            killed_shards.add(event.shard)
        elif event.kind == "stall":
            if tree.signal_shard(event.shard, signal.SIGSTOP):
                stalled_shards.add(event.shard)
                loop.call_later(
                    event.duration,
                    lambda shard=event.shard: tree.signal_shard(
                        shard, signal.SIGCONT
                    ),
                )
            else:
                record["ok"] = False
        elif event.kind == "drop":
            shard = client._shards[event.shard]  # noqa: SLF001 - soak harness
            writer = shard.writer
            if writer is not None and writer.transport is not None:
                writer.transport.abort()
            else:
                record["ok"] = False
        fired.append(record)

    async def settle() -> None:
        line, future = window.popleft()
        pairs.append((line, await future))

    started = time.perf_counter()
    try:
        index = 0
        while True:
            elapsed = time.perf_counter() - started
            if elapsed >= args.duration:
                break
            for event in schedule.due(int(elapsed * 100)):
                fire(event)
            while len(window) >= args.max_inflight:
                await settle()
            line = lines[index % len(lines)]
            index += 1
            window.append((line, await client.submit(line)))
        while window:
            await settle()

        # The window is over: stop the pressure stream and let it drain
        # before the recovery/warm audits, so the replayed pool below is
        # measured against an otherwise-idle tree.
        stop_pressure.set()
        pressure_responses: List[str] = (
            await pressure_task if pressure_task is not None else []
        )

        # Recovery: every killed shard must be serving again.  The stats
        # probe doubles as the breaker's half-open probe.
        recovery: Dict[int, Dict[str, Any]] = {}
        deadline = time.monotonic() + args.recovery_timeout
        pending_shards = set(killed_shards)
        while pending_shards and time.monotonic() < deadline:
            payloads = await client.stats()
            for shard in sorted(pending_shards):
                payload = payloads[shard]
                stats = payload.get("stats", {})
                if payload.get("status") == "ok" and (
                    stats.get("shard", {}).get("restarts", 0) >= 1
                ):
                    recovery[shard] = {
                        "restarts": stats["shard"]["restarts"],
                        "uptime_s": stats["uptime_s"],
                    }
                    pending_shards.discard(shard)
            if pending_shards:
                await asyncio.sleep(0.2)

        # Warm-restart evidence: replay the pool once more (its keys were
        # cached and journaled before the kills), then read each killed
        # shard's warm-hit counter off its replayed cache.
        replay_futures = [await client.submit(line) for line in lines]
        await asyncio.gather(*replay_futures)
        warm: Dict[int, Dict[str, Any]] = {}
        payloads = await client.stats()
        for shard in sorted(killed_shards):
            payload = payloads[shard]
            cache = payload.get("stats", {}).get("cache", {}) or {}
            warm[shard] = {
                "warm_hits": cache.get("warm_hits", 0),
                "size": cache.get("size", 0),
                "journal_entries": cache.get("journal_entries"),
                "snapshot_age_s": cache.get("snapshot_age_s"),
            }

        # Final server-side telemetry scrape: the audit summarizes each
        # shard's own latency quantiles, batch wait, hit rate and shed
        # counts — the soak's verdict table comes from the servers, not
        # from client-side observation.
        telemetry = await client.metrics()
    finally:
        stop_pressure.set()
        if pressure_task is not None and not pressure_task.done():
            pressure_task.cancel()
            try:
                await pressure_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        for shard in stalled_shards:
            tree.signal_shard(shard, signal.SIGCONT)
        await client.close()

    return {
        "pairs": pairs,
        "pressure_responses": pressure_responses,
        "submitted": len(pairs) + len(window),
        "elapsed_s": time.perf_counter() - started,
        "fired": fired,
        "killed_shards": sorted(killed_shards),
        "unrecovered_shards": sorted(pending_shards),
        "recovery": {str(k): v for k, v in sorted(recovery.items())},
        "warm": {str(k): v for k, v in sorted(warm.items())},
        "telemetry": telemetry,
        "client": client.client_stats(),
    }


def audit(
    args: argparse.Namespace,
    baseline: Dict[str, str],
    outcome: Dict[str, Any],
) -> Dict[str, Any]:
    """Check the soak invariants; returns the report dict."""
    failures: List[str] = []
    pairs = outcome["pairs"]
    statuses: Counter = Counter()
    ok_count = shed_count = degraded_count = 0
    mismatches: List[str] = []

    lost = outcome["submitted"] - len(pairs)
    if lost:
        failures.append(
            f"lost requests: {lost} of {outcome['submitted']} never resolved"
        )
    for line, response_text in pairs:
        request_id = json.loads(line)["id"]
        response = json.loads(response_text)
        status = response.get("status")
        statuses[status or "?"] += 1
        error_type = response.get("error", {}).get("type")
        if status == "ok":
            ok_count += 1
            if response_text != baseline[request_id]:
                mismatches.append(request_id)
        elif status == "rejected" and error_type == "service-overloaded":
            shed_count += 1
        elif status == "error" and error_type in DEGRADED_TYPES:
            degraded_count += 1
        else:
            failures.append(
                f"{request_id}: non-terminal/untyped response {response_text[:120]}"
            )
    if mismatches:
        failures.append(
            f"{len(mismatches)} ok response(s) diverge from the serial "
            f"baseline (first: {mismatches[0]})"
        )

    total = max(len(pairs), 1)
    nonok_fraction = (shed_count + degraded_count) / total
    if nonok_fraction > args.max_nonok_fraction:
        failures.append(
            f"degraded+shed fraction {nonok_fraction:.3f} exceeds the "
            f"--max-nonok-fraction bound {args.max_nonok_fraction}"
        )

    # Pressure stream: every response must still be terminal and typed,
    # and the combined run must actually have shed — otherwise the soak
    # exercised no admission-control pressure at all.
    pressure_ok = pressure_shed = pressure_degraded = 0
    for response_text in outcome["pressure_responses"]:
        response = json.loads(response_text)
        status = response.get("status")
        error_type = response.get("error", {}).get("type")
        if status == "ok":
            pressure_ok += 1
        elif status == "rejected" and error_type == "service-overloaded":
            pressure_shed += 1
        elif status == "error" and error_type in DEGRADED_TYPES:
            pressure_degraded += 1
        else:
            failures.append(
                f"pressure stream: non-terminal/untyped response "
                f"{response_text[:120]}"
            )
    shed_total = shed_count + pressure_shed
    if outcome["pressure_responses"] and shed_total < args.min_shed:
        failures.append(
            f"only {shed_total} shed response(s) across both streams "
            f"(--min-shed {args.min_shed}): no admission-control pressure"
        )

    if not outcome["killed_shards"]:
        failures.append("no shard was SIGKILLed — the warm-restart audit needs one")
    if outcome["unrecovered_shards"]:
        failures.append(
            f"killed shard(s) {outcome['unrecovered_shards']} not serving "
            "again by end of run"
        )
    warm_hits_total = sum(
        entry["warm_hits"] for entry in outcome["warm"].values()
    )
    cold = [
        shard
        for shard, entry in outcome["warm"].items()
        if entry["warm_hits"] <= 0
    ]
    if cold:
        failures.append(
            f"killed shard(s) {cold} came back cold: warm_hits == 0 after "
            "the post-restart replay (journal replay did not serve)"
        )

    # Observability: every shard's metrics endpoint must answer, and the
    # per-shard summary (server-side quantiles, batch wait, hit rate,
    # shed/restart counts) rides in the report + the final table.
    telemetry, telemetry_problems = summarize_telemetry(outcome["telemetry"])
    failures.extend(telemetry_problems)

    return {
        "duration_s": args.duration,
        "elapsed_s": round(outcome["elapsed_s"], 3),
        "submitted": outcome["submitted"],
        "responses": len(pairs),
        "lost": lost,
        "ok": ok_count,
        "shed": shed_count,
        "degraded": degraded_count,
        "nonok_fraction": round(nonok_fraction, 4),
        "byte_mismatches": len(mismatches),
        "pressure": {
            "responses": len(outcome["pressure_responses"]),
            "ok": pressure_ok,
            "shed": pressure_shed,
            "degraded": pressure_degraded,
        },
        "shed_total": shed_total,
        "statuses": dict(statuses),
        "fired": outcome["fired"],
        "killed_shards": outcome["killed_shards"],
        "recovery": outcome["recovery"],
        "warm": outcome["warm"],
        "warm_hits_total": warm_hits_total,
        "telemetry": telemetry,
        "client": outcome["client"],
        "failures": failures,
    }


def main(argv=None) -> int:
    """CLI entry point; exit 0 iff every soak invariant held."""
    parser = argparse.ArgumentParser(
        description=(
            "Boot a durable sharded repro server, drive wall-clock load "
            "under iterated-Poisson fault bursts plus admission-control "
            "shedding pressure, and audit zero-lost + warm-restart."
        )
    )
    parser.add_argument("--shards", type=int, default=3, help="shard count")
    parser.add_argument(
        "--duration", type=float, default=30.0, help="load window (wall-clock s)"
    )
    parser.add_argument(
        "--seed", type=int, default=2006, help="run seed (pool + fault schedule)"
    )
    parser.add_argument(
        "--bursts", type=int, default=2, help="sampled fault bursts in the window"
    )
    parser.add_argument(
        "--requests", type=int, default=300,
        help="size of the cycled request pool (smaller = more cache pressure)",
    )
    parser.add_argument(
        "--unique", type=int, default=24, help="distinct configurations in the pool"
    )
    parser.add_argument(
        "--tasks", type=int, default=40, help="maximum tasks per request"
    )
    parser.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="persistence root handed to the servers (default: a fresh tempdir)",
    )
    parser.add_argument(
        "--journal-max-entries", type=int, default=64,
        help="server-side journal compaction threshold (small = snapshots exercised)",
    )
    parser.add_argument(
        "--server-max-queue", type=int, default=16,
        help="server admission bound; kept below the client window so "
        "shedding pressure is part of the steady state",
    )
    parser.add_argument(
        "--server-batch-size", type=int, default=8, help="server dispatch batch"
    )
    parser.add_argument(
        "--server-max-cost", type=int, default=160,
        help="server admission budget on tasks x workers; sized so the "
        "pressure pool's heavy tail sheds while the audited main pool "
        "(tasks <= --tasks, width <= 4) is always admitted",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=48, help="client in-flight window"
    )
    parser.add_argument(
        "--pressure-unique", type=int, default=64,
        help="distinct heavy configurations in the shedding-pressure pool "
        "(0 disables the pressure stream)",
    )
    parser.add_argument(
        "--pressure-tasks", type=int, default=80,
        help="maximum tasks per pressure request (heavier = deeper queues)",
    )
    parser.add_argument(
        "--pressure-inflight", type=int, default=64,
        help="pressure client in-flight window (kept above the servers' "
        "admission bound so shedding actually triggers)",
    )
    parser.add_argument(
        "--min-shed", type=int, default=1,
        help="with the pressure stream on: minimum shed responses the run "
        "must observe across both streams",
    )
    parser.add_argument(
        "--timeout", type=float, default=2.0, help="client per-request deadline (s)"
    )
    parser.add_argument(
        "--retries", type=int, default=2, help="client retry budget per request"
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=1,
        help="consecutive failures that open a shard's circuit breaker",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=0.5,
        help="seconds before an open breaker half-opens",
    )
    parser.add_argument(
        "--restart-base-delay", type=float, default=0.25,
        help="supervisor backoff base (kept small so runs stay fast)",
    )
    parser.add_argument(
        "--restart-limit", type=int, default=5, help="supervisor crash-loop give-up"
    )
    parser.add_argument(
        "--recovery-timeout", type=float, default=30.0,
        help="seconds to wait for killed shards to serve again",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=90.0,
        help="hard cap on the post-window drain + audits (hang -> failure)",
    )
    parser.add_argument(
        "--max-nonok-fraction", type=float, default=0.5,
        help="upper bound on (shed + degraded) / responses",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the JSON soak report to FILE",
    )
    args = parser.parse_args(argv)
    if args.shards < 1 or args.duration <= 0:
        parser.error("--shards must be >= 1 and --duration > 0")
    if args.requests < 1 or args.unique < 1:
        parser.error("--requests and --unique must be >= 1")

    # The request pool reuses loadgen's deterministic generator; the
    # serial baseline is computed once and reused every cycle.
    pool_args = argparse.Namespace(
        seed=args.seed, unique=args.unique, workers=4, tasks=args.tasks,
        rate=10.0, period=20.0, requests=args.requests,
    )
    lines = generate_lines(pool_args)
    baseline = serial_baseline(lines)
    pressure_lines: List[str] = []
    if args.pressure_unique > 0:
        pressure_args = argparse.Namespace(
            seed=args.seed + 1, unique=args.pressure_unique, workers=4,
            tasks=args.pressure_tasks, rate=10.0, period=20.0,
            requests=args.pressure_unique,
        )
        pressure_lines = generate_lines(pressure_args)
    schedule = build_schedule(args)
    print(f"soak: schedule {schedule.to_specs()}", file=sys.stderr)

    state_dir = args.state_dir or tempfile.mkdtemp(prefix="repro-soak-")
    tree = SupervisorTree(
        args,
        _free_base_port(args.shards),
        extra_flags=[
            "--state-dir", state_dir,
            "--journal-max-entries", str(args.journal_max_entries),
            "--max-queue", str(args.server_max_queue),
            "--batch-size", str(args.server_batch_size),
            "--max-cost", str(args.server_max_cost),
        ],
    )
    async def bounded_drive() -> Dict[str, Any]:
        return await asyncio.wait_for(
            drive(args, tree, lines, pressure_lines, schedule),
            timeout=args.duration + args.drain_timeout,
        )

    try:
        tree.wait_ready()
        outcome = asyncio.run(bounded_drive())
    except asyncio.TimeoutError:
        print(
            f"soak: FAILED - run did not drain within "
            f"{args.duration + args.drain_timeout:.0f}s (lost/hung requests)",
            file=sys.stderr,
        )
        return 1
    except KeyboardInterrupt:
        print("soak: interrupted - reaping the supervised tree", file=sys.stderr)
        return 130
    finally:
        tree.shutdown()

    report = audit(args, baseline, outcome)
    report["schedule"] = schedule.summary()
    report["seed"] = args.seed
    report["state_dir"] = state_dir
    verdict = "PASSED" if not report["failures"] else "FAILED"
    report["verdict"] = verdict
    if args.report:
        Path(args.report).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    print(
        f"soak: {verdict} - {report['ok']}/{report['responses']} ok over "
        f"{report['elapsed_s']:.1f}s, {report['shed_total']} shed "
        f"(pressure {report['pressure']}), "
        f"{report['degraded']} degraded, {report['lost']} lost, "
        f"{report['byte_mismatches']} byte mismatch(es), "
        f"warm hits {report['warm']}, client {report['client']}",
        file=sys.stderr,
    )
    for line in format_telemetry_table(report["telemetry"]):
        print(f"soak: {line}", file=sys.stderr)
    for failure in report["failures"]:
        print(f"soak:   FAIL {failure}", file=sys.stderr)
    return 0 if not report["failures"] else 1


if __name__ == "__main__":
    sys.exit(main())
