#!/usr/bin/env python
"""Regenerate Table 1 and watch a heuristic lose against an adversary.

The script does two things:

1. Evaluates the nine adversary games of Section 3 with the engine-backed
   enumeration and prints the certified lower bound next to the closed form
   stated in the paper (Table 1).
2. Plays the Theorem 1 adversary against the List Scheduling heuristic and
   shows, release by release, how the adversary reacts to the algorithm's
   decisions and forces a makespan 5/4 times larger than the off-line
   optimum.

Run with:  python examples/adversary_lower_bounds.py
"""

from __future__ import annotations

from repro.experiments.reporting import format_table1_result
from repro.experiments.table1 import run_table1
from repro.schedulers import ListScheduler
from repro.theory import run_reactive_game, theorem1_adversary


def main() -> None:
    print("Reproduced Table 1 (certified lower bounds on the competitive ratio)")
    print(format_table1_result(run_table1()))
    print()

    print("Playing the Theorem 1 adversary against List Scheduling")
    adversary = theorem1_adversary()
    platform = adversary.platform
    print(f"  platform: c = {platform.comm_times}, p = {platform.comp_times}")
    outcome = run_reactive_game(adversary, ListScheduler)
    print(f"  releases issued by the adversary : {list(outcome.releases)}")
    print(f"  makespan achieved by LS          : {outcome.algorithm_value:.3f}")
    print(f"  off-line optimal makespan        : {outcome.optimal_value:.3f}")
    print(f"  performance ratio                : {outcome.ratio:.4f}")
    print("  (Theorem 1 says no deterministic algorithm can stay below 1.25)")


if __name__ == "__main__":
    main()
