#!/usr/bin/env python
"""Figure 1 campaign driven through the simulated MPI cluster.

This example follows the experimental protocol of Section 4.2 end to end:

1. build the five-machine simulated cluster (the substitute for the paper's
   Ethernet testbed);
2. calibrate it towards a communication-homogeneous platform by probing
   every slave with a matrix and choosing the nc_i / np_i repetition counts;
3. run the seven heuristics of the paper on the calibrated platform with a
   bag of identical tasks;
4. print the metrics normalised to SRPT, exactly like one bar group of
   Figure 1(b).

Run with:  python examples/cluster_campaign.py
"""

from __future__ import annotations

from repro.analysis.normalize import normalise_to_reference
from repro.core.platform import PlatformKind
from repro.experiments.reporting import format_metric_table
from repro.mpi_sim import default_cluster, run_cluster_campaign
from repro.schedulers import PAPER_HEURISTICS


def main() -> None:
    cluster = default_cluster(rng=42)
    print("Simulated cluster:")
    for machine in cluster.machines:
        print(
            f"  {machine.name}: cpu={machine.cpu_flops / 1e9:.2f} Gflop/s, "
            f"nic={machine.nic_bandwidth * 8 / 1e6:.1f} Mbit/s, "
            f"latency={machine.latency * 1e3:.2f} ms"
        )
    print()

    result = run_cluster_campaign(
        PlatformKind.COMMUNICATION_HOMOGENEOUS,
        n_tasks=400,
        cluster=cluster,
        rng=42,
    )
    calibration = result.calibration
    print("Calibration outcome (Section 4.2 protocol):")
    print(f"  nc_i multipliers : {list(calibration.comm_multipliers)}")
    print(f"  np_i multipliers : {list(calibration.comp_multipliers)}")
    print(f"  effective c_i    : {[round(c, 3) for c in calibration.platform.comm_times]}")
    print(f"  effective p_i    : {[round(p, 3) for p in calibration.platform.comp_times]}")
    print(f"  worst relative calibration error: {calibration.max_relative_error:.1%}")
    print(f"  resulting platform kind         : {calibration.platform.kind}")
    print()

    normalised = normalise_to_reference(result.metrics, "SRPT")
    print("Heuristic comparison on the calibrated platform (normalised to SRPT):")
    print(format_metric_table(normalised, row_order=list(PAPER_HEURISTICS)))


if __name__ == "__main__":
    main()
