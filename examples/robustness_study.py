#!/usr/bin/env python
"""Robustness of the heuristics to task-size perturbations (Figure 2).

Reproduces the Section 4.3 robustness experiment at a reduced scale: random
fully heterogeneous platforms, a bag of identical tasks as the baseline, and
perturbed copies of the bag where every task's size varies by up to 10 %.
For every heuristic the script prints the ratio perturbed/identical for the
three objectives, plus an exploration of how the degradation grows with the
perturbation amplitude (an extension the paper leaves as future work).

Run with:  python examples/robustness_study.py
"""

from __future__ import annotations

from repro.experiments.config import Figure2Config
from repro.experiments.figure2 import run_figure2
from repro.experiments.reporting import format_figure2


def main() -> None:
    base = Figure2Config(n_platforms=4, n_tasks=300, n_perturbations=2, seed=11)
    result = run_figure2(base)
    print(format_figure2(result))
    print()

    print("Makespan degradation (ratio - 1) as the perturbation amplitude grows:")
    amplitudes = (0.05, 0.10, 0.20, 0.40)
    header = f"{'heuristic':<10}" + "".join(f"{a:>10.0%}" for a in amplitudes)
    print(header)
    print("-" * len(header))
    rows = {name: [] for name in base.heuristics}
    for amplitude in amplitudes:
        config = Figure2Config(
            n_platforms=3,
            n_tasks=200,
            n_perturbations=2,
            seed=11,
            perturbation_amplitude=amplitude,
        )
        sweep = run_figure2(config)
        for name in base.heuristics:
            rows[name].append(sweep.mean_ratios[name]["makespan"] - 1.0)
    for name in base.heuristics:
        print(f"{name:<10}" + "".join(f"{value:>+10.2%}" for value in rows[name]))


if __name__ == "__main__":
    main()
