#!/usr/bin/env python
"""Low-level walk through the simulated MPI substrate.

While ``cluster_campaign.py`` runs the full Figure 1 protocol, this example
exposes the individual pieces of the substrate so they can be inspected and
reused: the matrix-task cost model, the switch/NIC network model, the noisy
probe measurements, and the nc_i/np_i scaling that turns one physical cluster
into platforms of prescribed heterogeneity.

Run with:  python examples/mpi_emulation.py
"""

from __future__ import annotations

from repro.mpi_sim import MatrixTaskModel, calibrate, default_cluster


def main() -> None:
    cluster = default_cluster(rng=3)
    probe = MatrixTaskModel(matrix_size=400)
    print(f"Probe matrix: {probe.matrix_size} x {probe.matrix_size} "
          f"({probe.message_bytes / 1e6:.2f} MB, {probe.flops / 1e6:.1f} Mflop)")
    print()

    print("Ground truth vs. probed estimates (one probe per slave):")
    measured_comm, measured_comp = cluster.probe_all(probe, rng=3)
    for j, machine in enumerate(cluster.machines):
        true_c = cluster.true_comm_time(j, probe)
        true_p = cluster.true_comp_time(j, probe)
        print(
            f"  {machine.name}: c={true_c:.4f}s (measured {measured_comm[j]:.4f}s)   "
            f"p={true_p:.4f}s (measured {measured_comp[j]:.4f}s)"
        )
    print()

    # Reach an explicit target platform: identical links, spread-out CPUs.
    n = len(cluster)
    target_comm = [0.5] * n
    target_comp = [0.8, 1.6, 3.2, 4.8, 6.4][:n]
    result = calibrate(cluster, target_comm, target_comp, probe=probe, rng=3)
    print("Calibration towards c_i = 0.5 s and spread-out p_i:")
    print(f"  nc_i = {list(result.comm_multipliers)}")
    print(f"  np_i = {list(result.comp_multipliers)}")
    print(f"  effective c_i = {[round(c, 3) for c in result.platform.comm_times]}")
    print(f"  effective p_i = {[round(p, 3) for p in result.platform.comp_times]}")
    errors = result.relative_error
    print(f"  per-slave comm error: {[f'{e:.1%}' for e in errors['comm']]}")
    print(f"  per-slave comp error: {[f'{e:.1%}' for e in errors['comp']]}")
    print(f"  platform kind: {result.platform.kind}")


if __name__ == "__main__":
    main()
