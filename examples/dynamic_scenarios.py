#!/usr/bin/env python
"""Dynamic-platform scenarios: heuristics under failures, slowdowns, joins.

The paper's experiments assume a static platform.  This walkthrough runs
the seven heuristics under three built-in scenarios from
``repro.scenarios`` — a mid-run node failure, a progressively degrading
worker, and an elastic cluster whose second half joins late — and prints
how much each heuristic's makespan degrades relative to the static run on
the same platform.  Every schedule is re-checked by ``Schedule.validate()``
against the scenario timeline.

Run with:  PYTHONPATH=src python examples/dynamic_scenarios.py
"""

from __future__ import annotations

from repro import PAPER_HEURISTICS, Platform, create_scheduler, evaluate, simulate
from repro.scenarios import create_scenario

SCENARIOS = ("static", "node-failure", "degrading-worker", "elastic-cluster")
N_TASKS = 120
SEED = 2006


def main() -> None:
    """Run the scenario comparison and print the degradation table."""
    platform = Platform.from_times(
        comm_times=[0.2, 0.4, 0.6, 1.0],
        comp_times=[1.0, 2.5, 4.0, 6.0],
    )
    print(f"Platform: {platform!r}")
    print(f"Tasks   : {N_TASKS} (bag at t=0 unless the scenario says otherwise)")
    print()

    makespans: dict[str, dict[str, float]] = {}
    for name in SCENARIOS:
        scenario = create_scenario(name)
        instance = scenario.build(platform, N_TASKS, rng=SEED)
        if not instance.timeline.is_trivial:
            print(f"{name}: {scenario.description}")
            for line in instance.timeline.describe():
                print(f"  {line}")
        makespans[name] = {}
        for heuristic in PAPER_HEURISTICS:
            schedule = simulate(
                create_scheduler(heuristic),
                platform,
                instance.tasks,
                expose_task_count=True,
                timeline=instance.timeline,
            )
            schedule.validate()  # independent feasibility check
            makespans[name][heuristic] = evaluate(schedule).makespan

    print()
    header = f"{'heuristic':<10}" + "".join(f"{name:>18}" for name in SCENARIOS)
    print(header)
    print("-" * len(header))
    for heuristic in PAPER_HEURISTICS:
        cells = []
        for name in SCENARIOS:
            value = makespans[name][heuristic]
            if name == "static":
                cells.append(f"{value:>18.2f}")
            else:
                ratio = value / makespans["static"][heuristic]
                cells.append(f"{value:>10.2f} ({ratio:4.2f}x)")
        print(f"{heuristic:<10}" + "".join(cells))
    print()
    print("Ratios compare each scenario to the same heuristic's static run.")


if __name__ == "__main__":
    main()
