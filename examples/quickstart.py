#!/usr/bin/env python
"""Quickstart: schedule a bag of identical tasks on a heterogeneous platform.

This example builds a small fully heterogeneous master-slave platform,
runs three of the paper's heuristics on the same bag of tasks, prints the
three objective functions for each of them, and renders an ASCII Gantt chart
of the best schedule so the one-port behaviour is visible.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Platform, evaluate, identical_tasks, simulate
from repro.core.trace import render_ascii_gantt
from repro.schedulers import ListScheduler, RoundRobin, SRPTScheduler


def main() -> None:
    # A master plus four slaves: c_j is the time the master's port is busy
    # sending one task to P_j, p_j the time P_j needs to execute it.
    platform = Platform.from_times(
        comm_times=[0.2, 0.4, 0.6, 1.0],
        comp_times=[1.0, 2.5, 4.0, 6.0],
    )
    print(f"Platform: {platform!r}")
    print(f"Kind    : {platform.kind}")
    print()

    # Twenty identical tasks, all released at time 0 (a bag of tasks).
    tasks = identical_tasks(20)

    schedules = {}
    for scheduler in (SRPTScheduler(), ListScheduler(), RoundRobin()):
        schedule = simulate(scheduler, platform, tasks)
        metrics = evaluate(schedule)
        schedules[scheduler.name] = (schedule, metrics)
        print(
            f"{scheduler.name:<6}  makespan={metrics.makespan:7.3f}  "
            f"sum-flow={metrics.sum_flow:8.3f}  max-flow={metrics.max_flow:7.3f}  "
            f"port-utilisation={metrics.master_utilisation:5.1%}"
        )

    best_name = min(schedules, key=lambda name: schedules[name][1].makespan)
    best_schedule, _ = schedules[best_name]
    print()
    print(f"Gantt chart of the best makespan ({best_name}):")
    print(render_ascii_gantt(best_schedule))


if __name__ == "__main__":
    main()
